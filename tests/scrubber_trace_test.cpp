// Tests for the background scrubber and the trace record/replay machinery.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/bitops.hpp"
#include "mem/bus.hpp"
#include "mem/memory_store.hpp"
#include "protect/scrubber.hpp"
#include "workload/generator.hpp"
#include "workload/profile.hpp"
#include "workload/trace.hpp"

namespace aeep::protect {
namespace {

class ScrubberTest : public ::testing::Test {
 protected:
  ScrubberTest() {
    L2Config cfg;
    cfg.geometry = cache::CacheGeometry{4096, 4, 64};  // 16 sets
    cfg.scheme = SchemeKind::kNonUniform;
    cfg.maintain_codes = true;
    l2_ = std::make_unique<ProtectedL2>(cfg, bus_, memory_);
  }

  std::vector<u64> line_of(u64 v) { return std::vector<u64>(8, v); }

  mem::SplitTransactionBus bus_{{8, 100}};
  mem::MemoryStore memory_;
  std::unique_ptr<ProtectedL2> l2_;
};

TEST_F(ScrubberTest, RepairsLatentSingleInDirtyLine) {
  l2_->write(0, 0x0, ~u64{0}, line_of(0x77));
  auto data = l2_->cache_model().data(0, l2_->cache_model().probe(0x0).way);
  data[3] = flip_bit(data[3], 21);  // latent strike

  Scrubber scrubber(*l2_, 1600);
  for (Cycle t = 1; t <= 1700; ++t) scrubber.tick(t);
  EXPECT_GE(scrubber.stats().lines_scrubbed, 1u);
  EXPECT_EQ(scrubber.stats().words_corrected, 1u);
  EXPECT_EQ(data[3], 0x77u);  // repaired in place
  EXPECT_EQ(scrubber.stats().uncorrectable, 0u);
}

TEST_F(ScrubberTest, RefetchesCleanLine) {
  l2_->read(0, 0x4000);
  const auto pr = l2_->cache_model().probe(0x4000);
  auto data = l2_->cache_model().data(pr.set, pr.way);
  data[0] = flip_bit(data[0], 5);

  Scrubber scrubber(*l2_, 16);  // one set per cycle
  scrubber.scrub_all(0);
  EXPECT_EQ(scrubber.stats().lines_refetched, 1u);
  EXPECT_EQ(data[0], memory_.read_word(0x4000));
}

TEST_F(ScrubberTest, PreventsDoubleAccumulation) {
  // Strike the same word twice with a scrub in between: both repaired.
  // Without the scrub, the pair would be a DUE.
  l2_->write(0, 0x0, ~u64{0}, line_of(0xAB));
  const auto pr = l2_->cache_model().probe(0x0);
  auto data = l2_->cache_model().data(pr.set, pr.way);

  Scrubber scrubber(*l2_, 16);
  data[2] = flip_bit(data[2], 7);
  scrubber.scrub_all(0);
  data[2] = flip_bit(data[2], 40);
  scrubber.scrub_all(0);
  EXPECT_EQ(scrubber.stats().words_corrected, 2u);
  EXPECT_EQ(scrubber.stats().uncorrectable, 0u);
  EXPECT_EQ(data[2], 0xABu);

  // Control: two strikes without an intervening scrub are unrecoverable.
  data[2] = flip_bit(flip_bit(data[2], 7), 40);
  scrubber.scrub_all(0);
  EXPECT_EQ(scrubber.stats().uncorrectable, 1u);
}

TEST_F(ScrubberTest, CountsScrubbedLines) {
  for (unsigned i = 0; i < 8; ++i)
    l2_->read(0, 0x10000 + static_cast<Addr>(i) * 64);
  Scrubber scrubber(*l2_, 16);
  scrubber.scrub_all(0);
  EXPECT_EQ(scrubber.stats().lines_scrubbed, 8u);
}

}  // namespace
}  // namespace aeep::protect

namespace aeep::workload {
namespace {

std::string temp_trace_path() {
  return ::testing::TempDir() + "/aeep_trace_test.bin";
}

TEST(Trace, RoundTripsOps) {
  const std::string path = temp_trace_path();
  SyntheticWorkload gen(profile_by_name("gzip"), 5);
  record_trace(gen, path, 5000);

  SyntheticWorkload gen2(profile_by_name("gzip"), 5);  // same seed
  TraceReplaySource replay(path);
  ASSERT_EQ(replay.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    const cpu::MicroOp a = gen2.next();
    const cpu::MicroOp b = replay.next();
    ASSERT_EQ(a.pc, b.pc) << i;
    ASSERT_EQ(static_cast<int>(a.cls), static_cast<int>(b.cls)) << i;
    ASSERT_EQ(a.mem_addr, b.mem_addr) << i;
    ASSERT_EQ(a.store_value, b.store_value) << i;
    ASSERT_EQ(a.branch_taken, b.branch_taken) << i;
    ASSERT_EQ(a.branch_target, b.branch_target) << i;
    ASSERT_EQ(a.dep1, b.dep1) << i;
    ASSERT_EQ(a.dep2, b.dep2) << i;
  }
  std::remove(path.c_str());
}

TEST(Trace, WrapsAroundWhenExhausted) {
  const std::string path = temp_trace_path();
  SyntheticWorkload gen(profile_by_name("mcf"), 9);
  record_trace(gen, path, 100);
  TraceReplaySource replay(path);
  const cpu::MicroOp first = replay.next();
  for (int i = 1; i < 100; ++i) replay.next();
  const cpu::MicroOp wrapped = replay.next();
  EXPECT_EQ(replay.wraps(), 1u);
  EXPECT_EQ(first.pc, wrapped.pc);
  EXPECT_EQ(first.mem_addr, wrapped.mem_addr);
  std::remove(path.c_str());
}

TEST(Trace, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW(TraceReplaySource("/nonexistent/trace.bin"),
               std::runtime_error);
  const std::string path = temp_trace_path();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const char junk[] = "not a trace";
  std::fwrite(junk, 1, sizeof junk, f);
  std::fclose(f);
  EXPECT_THROW((void)TraceReplaySource{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, WriterCountsAppends) {
  const std::string path = temp_trace_path();
  {
    TraceWriter w(path);
    cpu::MicroOp op;
    for (int i = 0; i < 42; ++i) w.append(op);
    EXPECT_EQ(w.count(), 42u);
  }
  TraceReplaySource replay(path);
  EXPECT_EQ(replay.size(), 42u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aeep::workload
