// Tests for the error-code implementations: parity, byte parity, and the
// SECDED(72,64) extended Hamming code — including exhaustive single-bit
// correction over all codeword positions and double-bit detection sweeps.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "ecc/line_codec.hpp"
#include "ecc/parity.hpp"
#include "ecc/secded.hpp"

namespace aeep::ecc {
namespace {

TEST(ParityCodec, EncodesEvenParity) {
  ParityCodec even(false);
  EXPECT_EQ(even.encode(0), 0u);
  EXPECT_EQ(even.encode(1), 1u);
  EXPECT_EQ(even.encode(0b11), 0u);
  EXPECT_EQ(even.encode(0b111), 1u);
  EXPECT_EQ(even.check_bits(), 1u);
  EXPECT_FALSE(even.corrects_single());
}

TEST(ParityCodec, OddParityComplementsEven) {
  ParityCodec even(false), odd(true);
  Xorshift64Star rng(11);
  for (int i = 0; i < 1000; ++i) {
    const u64 x = rng.next();
    EXPECT_EQ(even.encode(x) ^ 1u, odd.encode(x));
  }
}

TEST(ParityCodec, CleanWordDecodesOk) {
  ParityCodec codec;
  Xorshift64Star rng(12);
  for (int i = 0; i < 1000; ++i) {
    const u64 x = rng.next();
    const auto r = codec.decode(x, codec.encode(x));
    EXPECT_EQ(r.status, DecodeStatus::kOk);
    EXPECT_EQ(r.data, x);
  }
}

TEST(ParityCodec, DetectsEverySingleBitFlip) {
  ParityCodec codec;
  const u64 x = 0xDEADBEEFCAFEF00Dull;
  const u64 c = codec.encode(x);
  for (unsigned b = 0; b < 64; ++b) {
    EXPECT_EQ(codec.decode(flip_bit(x, b), c).status,
              DecodeStatus::kDetectedError);
  }
  // And a flipped check bit.
  EXPECT_EQ(codec.decode(x, c ^ 1u).status, DecodeStatus::kDetectedError);
}

TEST(ParityCodec, MissesDoubleBitFlips) {
  // Inherent parity limitation — documents the clean-line refetch rationale:
  // a double flip in a clean line is invisible to parity, but the line's
  // content is still recoverable from memory, so refetch-on-any-doubt works
  // only for detected errors; double errors in clean lines are the residual
  // vulnerability of parity (as in commercial parts).
  ParityCodec codec;
  const u64 x = 0x0123456789ABCDEFull;
  const u64 c = codec.encode(x);
  EXPECT_EQ(codec.decode(flip_bit(flip_bit(x, 3), 47), c).status,
            DecodeStatus::kOk);
}

TEST(ByteParityCodec, DetectsFlipsInEachByte) {
  ByteParityCodec codec;
  EXPECT_EQ(codec.check_bits(), 8u);
  const u64 x = 0xA5A5A5A55A5A5A5Aull;
  const u64 c = codec.encode(x);
  EXPECT_EQ(codec.decode(x, c).status, DecodeStatus::kOk);
  for (unsigned b = 0; b < 64; ++b) {
    EXPECT_EQ(codec.decode(flip_bit(x, b), c).status,
              DecodeStatus::kDetectedError)
        << "bit " << b;
  }
}

TEST(ByteParityCodec, DetectsDoubleFlipAcrossBytes) {
  ByteParityCodec codec;
  const u64 x = 0x1111111122222222ull;
  const u64 c = codec.encode(x);
  // Two flips in different bytes remain detectable (unlike word parity).
  EXPECT_EQ(codec.decode(flip_bit(flip_bit(x, 1), 62), c).status,
            DecodeStatus::kDetectedError);
}

// ---------------------------------------------------------------------------
// SECDED
// ---------------------------------------------------------------------------

TEST(Secded, MetaData) {
  SecdedCodec codec;
  EXPECT_EQ(codec.check_bits(), 8u);
  EXPECT_TRUE(codec.corrects_single());
  EXPECT_EQ(codec.name(), "secded(72,64)");
}

TEST(Secded, CleanWordsDecodeOk) {
  SecdedCodec codec;
  Xorshift64Star rng(21);
  for (int i = 0; i < 2000; ++i) {
    const u64 x = rng.next();
    const u64 c = codec.encode(x);
    EXPECT_LT(c, 256u);  // 8 live check bits
    const auto r = codec.decode(x, c);
    EXPECT_EQ(r.status, DecodeStatus::kOk);
    EXPECT_EQ(r.data, x);
    EXPECT_EQ(r.check, c);
  }
}

/// Exhaustive: every single-bit flip in the 72-bit codeword is corrected,
/// over a set of data words.
class SecdedSingleBit : public ::testing::TestWithParam<u64> {};

TEST_P(SecdedSingleBit, CorrectsEveryDataBitFlip) {
  SecdedCodec codec;
  const u64 x = GetParam();
  const u64 c = codec.encode(x);
  for (unsigned b = 0; b < 64; ++b) {
    const auto r = codec.decode(flip_bit(x, b), c);
    ASSERT_EQ(r.status, DecodeStatus::kCorrectedSingle) << "bit " << b;
    EXPECT_EQ(r.data, x) << "bit " << b;
    EXPECT_EQ(r.check, c) << "bit " << b;
    EXPECT_EQ(r.corrected_bit, b);
  }
}

TEST_P(SecdedSingleBit, CorrectsEveryCheckBitFlip) {
  SecdedCodec codec;
  const u64 x = GetParam();
  const u64 c = codec.encode(x);
  for (unsigned b = 0; b < 8; ++b) {
    const auto r = codec.decode(x, flip_bit(c, b));
    ASSERT_EQ(r.status, DecodeStatus::kCorrectedSingle) << "check bit " << b;
    EXPECT_EQ(r.data, x);
    EXPECT_EQ(r.check, c);
    EXPECT_EQ(r.corrected_bit, 64 + b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Words, SecdedSingleBit,
    ::testing::Values(u64{0}, ~u64{0}, u64{1}, u64{0x8000000000000000ull},
                      u64{0xDEADBEEFCAFEF00Dull}, u64{0x5555555555555555ull},
                      u64{0xAAAAAAAAAAAAAAAAull}, u64{0x0123456789ABCDEFull},
                      u64{0xF0F0F0F00F0F0F0Full}, u64{42}));

TEST(Secded, DetectsAllDoubleDataBitFlips) {
  SecdedCodec codec;
  const u64 x = 0xC0FFEE0DDBA11AD5ull;
  const u64 c = codec.encode(x);
  // Exhaustive over all 64*63/2 data-bit pairs.
  for (unsigned i = 0; i < 64; ++i) {
    for (unsigned j = i + 1; j < 64; ++j) {
      const auto r = codec.decode(flip_bit(flip_bit(x, i), j), c);
      ASSERT_EQ(r.status, DecodeStatus::kDetectedDouble)
          << "bits " << i << "," << j;
    }
  }
}

TEST(Secded, DetectsDataPlusCheckDoubleFlips) {
  SecdedCodec codec;
  const u64 x = 0x123456789ABCDEF0ull;
  const u64 c = codec.encode(x);
  for (unsigned i = 0; i < 64; ++i) {
    for (unsigned j = 0; j < 8; ++j) {
      const auto r = codec.decode(flip_bit(x, i), flip_bit(c, j));
      ASSERT_EQ(r.status, DecodeStatus::kDetectedDouble)
          << "data bit " << i << ", check bit " << j;
    }
  }
}

TEST(Secded, DetectsCheckCheckDoubleFlips) {
  SecdedCodec codec;
  const u64 x = 0x998877665544332ull;
  const u64 c = codec.encode(x);
  for (unsigned i = 0; i < 8; ++i) {
    for (unsigned j = i + 1; j < 8; ++j) {
      const auto r = codec.decode(x, flip_bit(flip_bit(c, i), j));
      ASSERT_EQ(r.status, DecodeStatus::kDetectedDouble)
          << "check bits " << i << "," << j;
    }
  }
}

TEST(Secded, CheckBitsDifferAcrossNeighbouringWords) {
  // The code must actually depend on the data (regression against a codec
  // that returns constants).
  SecdedCodec codec;
  Xorshift64Star rng(22);
  unsigned diff = 0;
  for (int i = 0; i < 256; ++i) {
    const u64 x = rng.next();
    if (codec.encode(x) != codec.encode(x + 1)) ++diff;
  }
  EXPECT_GT(diff, 200u);
}

// ---------------------------------------------------------------------------
// Line codec
// ---------------------------------------------------------------------------

TEST(LineCodec, RoundTripsCleanLine) {
  SecdedCodec secded;
  LineCodec lc(secded, 64);
  EXPECT_EQ(lc.words_per_line(), 8u);
  EXPECT_EQ(lc.check_bits_per_line(), 64u);

  Xorshift64Star rng(31);
  ProtectedLine line;
  for (int w = 0; w < 8; ++w) line.data.push_back(rng.next());
  line.check = lc.encode_alloc(line.data);

  const auto r = lc.decode_alloc(line);
  EXPECT_EQ(r.worst, DecodeStatus::kOk);
  EXPECT_EQ(r.words_ok, 8u);
  EXPECT_EQ(r.data, line.data);
}

TEST(LineCodec, CorrectsScatteredSingleBitErrors) {
  SecdedCodec secded;
  LineCodec lc(secded, 64);
  Xorshift64Star rng(32);
  ProtectedLine line;
  for (int w = 0; w < 8; ++w) line.data.push_back(rng.next());
  const std::vector<u64> golden = line.data;
  line.check = lc.encode_alloc(line.data);

  // One flip in every word: all corrected independently.
  for (int w = 0; w < 8; ++w)
    line.data[w] = flip_bit(line.data[w], static_cast<unsigned>(rng.next_below(64)));

  const auto r = lc.decode_alloc(line);
  EXPECT_EQ(r.worst, DecodeStatus::kCorrectedSingle);
  EXPECT_EQ(r.words_corrected, 8u);
  EXPECT_EQ(r.data, golden);
}

TEST(LineCodec, ReportsWorstStatusAcrossWords) {
  SecdedCodec secded;
  LineCodec lc(secded, 64);
  ProtectedLine line;
  for (int w = 0; w < 8; ++w) line.data.push_back(0x1111111111111111ull * (w + 1));
  line.check = lc.encode_alloc(line.data);
  line.data[2] = flip_bit(line.data[2], 5);                       // single
  line.data[6] = flip_bit(flip_bit(line.data[6], 1), 60);         // double

  const auto r = lc.decode_alloc(line);
  EXPECT_EQ(r.worst, DecodeStatus::kDetectedDouble);
  EXPECT_EQ(r.words_corrected, 1u);
  EXPECT_EQ(r.words_detected, 1u);
  EXPECT_EQ(r.words_ok, 6u);
}

TEST(LineCodec, RejectsBadLineSize) {
  SecdedCodec secded;
  EXPECT_THROW(LineCodec(secded, 0), std::invalid_argument);
  EXPECT_THROW(LineCodec(secded, 7), std::invalid_argument);
  EXPECT_NO_THROW(LineCodec(secded, 32));
}

// ---------------------------------------------------------------------------
// Scratch-buffer API equivalence: the allocation-free encode/decode overloads
// must agree exactly with the legacy allocating API across all three codecs,
// on clean lines and on lines with corrected / detected errors.
// ---------------------------------------------------------------------------

class LineCodecScratchEquivalence
    : public ::testing::TestWithParam<const char*> {
 protected:
  const WordCodec& codec() {
    const std::string which = GetParam();
    if (which == "parity") return parity_;
    if (which == "byte-parity") return byte_parity_;
    return secded_;
  }

  ParityCodec parity_;
  ByteParityCodec byte_parity_;
  SecdedCodec secded_;
};

TEST_P(LineCodecScratchEquivalence, EncodeMatchesAllocOnRandomLines) {
  LineCodec lc(codec(), 64);
  Xorshift64Star rng(41);
  std::vector<u64> data(8), check(8);
  for (int iter = 0; iter < 200; ++iter) {
    for (auto& w : data) w = rng.next();
    lc.encode(data, check);
    EXPECT_EQ(check, lc.encode_alloc(data));
  }
}

TEST_P(LineCodecScratchEquivalence, DecodeMatchesAllocWithInjectedErrors) {
  LineCodec lc(codec(), 64);
  Xorshift64Star rng(42);
  ProtectedLine line;
  line.data.resize(8);
  std::vector<u64> scratch_out(8);
  for (int iter = 0; iter < 200; ++iter) {
    for (auto& w : line.data) w = rng.next();
    line.check = lc.encode_alloc(line.data);

    // Exercise every path: clean, single flip (corrected by SECDED,
    // detected by the parity codecs), double flip in one word (detected by
    // SECDED and byte parity, missed by word parity).
    const unsigned mode = static_cast<unsigned>(iter) % 3;
    if (mode >= 1) {
      const unsigned w = static_cast<unsigned>(rng.next_below(8));
      line.data[w] = flip_bit(line.data[w],
                              static_cast<unsigned>(rng.next_below(64)));
      if (mode == 2) {
        const unsigned b1 = static_cast<unsigned>(rng.next_below(63));
        line.data[w] = flip_bit(line.data[w], b1 + 1);
      }
    }

    const LineDecodeResult alloc = lc.decode_alloc(line);
    const LineDecodeSummary scratch =
        lc.decode(line.data, line.check, scratch_out);
    EXPECT_EQ(scratch.worst, alloc.worst);
    EXPECT_EQ(scratch.words_ok, alloc.words_ok);
    EXPECT_EQ(scratch.words_corrected, alloc.words_corrected);
    EXPECT_EQ(scratch.words_detected, alloc.words_detected);
    EXPECT_EQ(scratch_out, alloc.data);
  }
}

TEST_P(LineCodecScratchEquivalence, DecodeInPlaceAliasingRepairsLine) {
  LineCodec lc(codec(), 64);
  Xorshift64Star rng(43);
  ProtectedLine line;
  line.data.resize(8);
  for (int iter = 0; iter < 100; ++iter) {
    for (auto& w : line.data) w = rng.next();
    line.check = lc.encode_alloc(line.data);
    if (iter % 2 == 1) {
      const unsigned w = static_cast<unsigned>(rng.next_below(8));
      line.data[w] = flip_bit(line.data[w],
                              static_cast<unsigned>(rng.next_below(64)));
    }
    const LineDecodeResult alloc = lc.decode_alloc(line);
    // data_out aliases data: decode must leave the corrected payload there.
    const LineDecodeSummary scratch =
        lc.decode(line.data, line.check, line.data);
    EXPECT_EQ(scratch.worst, alloc.worst);
    EXPECT_EQ(line.data, alloc.data);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, LineCodecScratchEquivalence,
                         ::testing::Values("parity", "byte-parity", "secded"));

// ---------------------------------------------------------------------------
// Batched SWAR paths: encode_batch / encode_batch_masked / mismatch_mask must
// agree bit-for-bit with the scalar per-word virtual calls on every codec —
// the hot paths (line encode, clean scans, silent-write elision) lean on
// this equivalence.
// ---------------------------------------------------------------------------

class BatchedCodecEquivalence : public ::testing::TestWithParam<const char*> {
 protected:
  const WordCodec& codec() {
    const std::string which = GetParam();
    if (which == "parity") return parity_;
    if (which == "odd-parity") return odd_parity_;
    if (which == "byte-parity") return byte_parity_;
    return secded_;
  }

  ParityCodec parity_;
  ParityCodec odd_parity_{true};
  ByteParityCodec byte_parity_;
  SecdedCodec secded_;
};

TEST_P(BatchedCodecEquivalence, EncodeBatchMatchesScalar) {
  const WordCodec& c = codec();
  Xorshift64Star rng(77);
  std::vector<u64> data(8), batched(8);
  for (int iter = 0; iter < 500; ++iter) {
    for (auto& w : data) w = rng.next();
    c.encode_batch(data, batched);
    for (unsigned w = 0; w < 8; ++w) EXPECT_EQ(batched[w], c.encode(data[w]));
  }
}

TEST_P(BatchedCodecEquivalence, MaskedEncodeTouchesOnlyMaskedWords) {
  const WordCodec& c = codec();
  Xorshift64Star rng(78);
  std::vector<u64> data(8), check(8);
  constexpr u64 kSentinel = 0xA5A5A5A5A5A5A5A5ull;
  for (int iter = 0; iter < 200; ++iter) {
    for (auto& w : data) w = rng.next();
    const u64 mask = rng.next() & 0xFF;
    std::fill(check.begin(), check.end(), kSentinel);
    c.encode_batch_masked(data, mask, check);
    for (unsigned w = 0; w < 8; ++w) {
      if (mask & (u64{1} << w))
        EXPECT_EQ(check[w], c.encode(data[w]));
      else
        EXPECT_EQ(check[w], kSentinel) << "unmasked word was overwritten";
    }
  }
}

TEST_P(BatchedCodecEquivalence, MismatchMaskAgreesWithScalarDecodeStatus) {
  const WordCodec& c = codec();
  Xorshift64Star rng(79);
  std::vector<u64> data(8), check(8);
  for (int iter = 0; iter < 500; ++iter) {
    for (auto& w : data) w = rng.next();
    c.encode_batch(data, check);
    // Corrupt 0-3 words: data flips, check flips, and double flips.
    for (unsigned k = iter % 4; k > 0; --k) {
      const unsigned w = static_cast<unsigned>(rng.next_below(8));
      if (rng.next_below(2) == 0)
        data[w] = flip_bit(data[w], static_cast<unsigned>(rng.next_below(64)));
      else
        check[w] ^= u64{1} << rng.next_below(c.check_bits());
    }
    const u64 mm = c.mismatch_mask(data, check);
    for (unsigned w = 0; w < 8; ++w) {
      const bool flagged = (mm >> w) & 1;
      const bool scalar_bad =
          c.decode(data[w], check[w]).status != DecodeStatus::kOk;
      EXPECT_EQ(flagged, scalar_bad) << "word " << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, BatchedCodecEquivalence,
                         ::testing::Values("parity", "odd-parity",
                                           "byte-parity", "secded"));

TEST(ByteParityCodec, SwarEncodeMatchesReferenceLoop) {
  ByteParityCodec c;
  Xorshift64Star rng(80);
  for (int iter = 0; iter < 2000; ++iter) {
    const u64 x = iter < 3 ? static_cast<u64>(iter) : rng.next();
    u64 ref = 0;
    for (unsigned b = 0; b < 8; ++b) {
      const auto byte = static_cast<unsigned>((x >> (8 * b)) & 0xFF);
      ref |= static_cast<u64>(popcount64(byte) & 1) << b;
    }
    EXPECT_EQ(c.encode(x), ref) << "word " << std::hex << x;
  }
}

TEST(LineCodec, EncodeDirtyReencodesExactlyTheDirtyWords) {
  SecdedCodec secded;
  LineCodec lc(secded, 64);
  Xorshift64Star rng(81);
  std::vector<u64> data(8), check(8);
  for (int iter = 0; iter < 200; ++iter) {
    for (auto& w : data) w = rng.next();
    lc.encode(data, check);

    // Mutate a random subset and refresh only those words' codes.
    const u64 dirty = rng.next() & 0xFF;
    const std::vector<u64> stale_check = check;
    for (unsigned w = 0; w < 8; ++w)
      if (dirty & (u64{1} << w)) data[w] = rng.next();
    lc.encode_dirty(data, dirty, check);

    for (unsigned w = 0; w < 8; ++w) {
      if (dirty & (u64{1} << w))
        EXPECT_EQ(check[w], secded.encode(data[w]));
      else
        EXPECT_EQ(check[w], stale_check[w]);
    }
    // The refreshed line must decode clean end to end.
    std::vector<u64> out(8);
    EXPECT_EQ(lc.decode(data, check, out).worst, DecodeStatus::kOk);
    EXPECT_EQ(out, data);
  }
}

TEST(LineCodec, WorseOrdersSeverity) {
  EXPECT_EQ(worse(DecodeStatus::kOk, DecodeStatus::kCorrectedSingle),
            DecodeStatus::kCorrectedSingle);
  EXPECT_EQ(worse(DecodeStatus::kDetectedDouble, DecodeStatus::kCorrectedSingle),
            DecodeStatus::kDetectedDouble);
  EXPECT_EQ(worse(DecodeStatus::kDetectedError, DecodeStatus::kOk),
            DecodeStatus::kDetectedError);
}

}  // namespace
}  // namespace aeep::ecc
