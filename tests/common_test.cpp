// Tests for the common substrate: bit utilities, RNG and Zipf sampling,
// statistics primitives (including the cycle-exact time-weighted level used
// for the dirty-lines-per-cycle metric), CLI parsing and table rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/bitops.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace aeep {
namespace {

TEST(Bitops, PowersOfTwo) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(4096), 12u);
}

TEST(Bitops, BitManipulation) {
  EXPECT_EQ(popcount64(0xFFull), 8u);
  EXPECT_EQ(parity64(0b101), 0u);
  EXPECT_EQ(parity64(0b111), 1u);
  EXPECT_EQ(bit_of(0b100, 2), 1u);
  EXPECT_EQ(bit_of(0b100, 1), 0u);
  EXPECT_EQ(with_bit(0, 5, 1), 32u);
  EXPECT_EQ(with_bit(32, 5, 0), 0u);
  EXPECT_EQ(flip_bit(0, 63), 1ull << 63);
  EXPECT_EQ(bits_of(0xABCD, 4, 8), 0xBCull);
  EXPECT_EQ(bits_of(~u64{0}, 0, 64), ~u64{0});
  EXPECT_EQ(round_up_pow2(100, 64), 128u);
  EXPECT_EQ(round_up_pow2(128, 64), 128u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Xorshift64Star a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xorshift64Star a(1), b(2);
  unsigned same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0u);
}

TEST(Rng, ZeroSeedIsRemapped) {
  Xorshift64Star z(0);
  EXPECT_NE(z.next(), 0u);  // xorshift with zero state would stick at zero
}

TEST(Rng, BoundsRespected) {
  Xorshift64Star r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Xorshift64Star r(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches) {
  Xorshift64Star r(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.next_geometric(0.25));
  EXPECT_NEAR(sum / n, 4.0, 0.1);  // mean of geometric = 1/p
}

TEST(Zipf, SamplesInRangeAndSkewed) {
  ZipfSampler z(1000, 1.0, 42);
  std::map<u64, u64> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const u64 s = z.sample();
    ASSERT_LT(s, 1000u);
    ++counts[s];
  }
  // Rank 0 should be roughly twice as popular as rank 1 for s=1.
  EXPECT_GT(counts[0], counts[1]);
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_NEAR(ratio, 2.0, 0.5);
  // And vastly more popular than deep tail ranks.
  EXPECT_GT(counts[0], counts[900] * 20);
}

TEST(Zipf, UniformWhenExponentZero) {
  ZipfSampler z(100, 0.0, 43);
  std::vector<u64> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.sample()];
  for (int k : {0, 13, 57, 99})
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, 0.01, 0.004);
}

TEST(Stats, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, RunningMeanTracksMinMax) {
  RunningMean m;
  EXPECT_EQ(m.mean(), 0.0);
  m.add(2.0);
  m.add(4.0);
  m.add(9.0);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  EXPECT_EQ(m.count(), 3u);
}

TEST(Stats, TimeWeightedLevelIsExact) {
  TimeWeightedLevel l;
  l.reset(0, 0.0);
  l.update(10, 4.0);   // level 0 over [0,10)
  l.update(20, 8.0);   // level 4 over [10,20)
  l.update(40, 8.0);   // level 8 over [20,40)
  // average = (0*10 + 4*10 + 8*20) / 40 = 200/40 = 5
  EXPECT_DOUBLE_EQ(l.average(), 5.0);
  EXPECT_DOUBLE_EQ(l.current(), 8.0);
  EXPECT_EQ(l.elapsed(), 40u);
}

TEST(Stats, TimeWeightedLevelSameCycleUpdates) {
  TimeWeightedLevel l;
  l.reset(5, 1.0);
  l.update(5, 3.0);  // instantaneous change, no weight at level 1
  l.update(15, 3.0);
  EXPECT_DOUBLE_EQ(l.average(), 3.0);
}

TEST(Stats, HistogramBucketsAndPercentile) {
  Histogram h(10, 10);  // buckets [0,10) .. [90,100) + overflow
  for (u64 v = 0; v < 100; ++v) h.add(v);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bucket(0), 10u);
  EXPECT_EQ(h.bucket(9), 10u);
  EXPECT_EQ(h.percentile(0.5), 50u);
  h.add(1000, 5);  // overflow bucket
  EXPECT_EQ(h.bucket(10), 5u);
}

TEST(Stats, RegistryAggregates) {
  StatRegistry reg;
  reg.counter("l2.wb.clean").inc(3);
  reg.counter("l2.wb.ecc").inc(5);
  reg.running_mean("ipc").add(1.5);
  const auto cs = reg.counters();
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].first, "l2.wb.clean");
  EXPECT_EQ(cs[0].second, 3u);
  reg.reset_all();
  EXPECT_EQ(reg.counter("l2.wb.clean").value(), 0u);
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--alpha=5", "--beta", "pos1", "--gamma=x"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_u64("alpha", 0), 5u);
  EXPECT_TRUE(args.get_bool("beta", false));
  EXPECT_EQ(args.get("gamma", ""), "x");
  EXPECT_EQ(args.get("missing", "d"), "d");
  ASSERT_EQ(args.positionals().size(), 1u);
  EXPECT_EQ(args.positionals()[0], "pos1");
}

TEST(Cli, NumericSuffixes) {
  const char* argv[] = {"prog", "--a=64K", "--b=1M", "--c=2G", "--d=123"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_u64("a", 0), u64{64} << 10);
  EXPECT_EQ(args.get_u64("b", 0), u64{1} << 20);
  EXPECT_EQ(args.get_u64("c", 0), u64{2} << 30);
  EXPECT_EQ(args.get_u64("d", 0), 123u);
}

TEST(Cli, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  CliArgs args(3, argv);
  (void)args.get_u64("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, RejectsDuplicateFlags) {
  // A repeated flag is a copy-paste error; silently taking the last value
  // once launched a sweep under the wrong seed.
  const char* argv[] = {"prog", "--seed=1", "--jobs=4", "--seed=7"};
  EXPECT_THROW(CliArgs(4, argv), std::invalid_argument);
  try {
    CliArgs args(4, argv);
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--seed"), std::string::npos)
        << "error must name the duplicated flag: " << e.what();
  }
}

TEST(Cli, RejectsDuplicateBareFlags) {
  // `--verbose --verbose` and `--jobs --jobs=2` are both duplicates: the
  // key, not the spelled form, is what may appear once.
  const char* argv1[] = {"prog", "--verbose", "--verbose"};
  EXPECT_THROW(CliArgs(3, argv1), std::invalid_argument);
  const char* argv2[] = {"prog", "--jobs", "--jobs=2"};
  EXPECT_THROW(CliArgs(3, argv2), std::invalid_argument);
}

TEST(Cli, DistinctFlagsStillParse) {
  const char* argv[] = {"prog", "--seed=1", "--seeds=2"};  // prefix != dup
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_u64("seed", 0), 1u);
  EXPECT_EQ(args.get_u64("seeds", 0), 2u);
}

TEST(Cli, MissingValueFallsBackToDefault) {
  // `--key=` supplies an empty value: string getters return it verbatim,
  // numeric getters must throw (an empty numeral is a typo, not a zero).
  const char* argv[] = {"prog", "--name=", "--count="};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get("name", "default"), "");
  EXPECT_TRUE(args.has("count"));
  EXPECT_THROW(args.get_u64("count", 9), std::invalid_argument);
}

TEST(Cli, BadNumericSuffixThrows) {
  const char* argv[] = {"prog", "--interval=64Q"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_u64("interval", 0), std::invalid_argument);
}

TEST(Cli, UnknownFlagSurfacesInUnusedAndQueriedListsAccepted) {
  // The reject_unknown_flags() path: a typo'd flag stays in unused() and
  // the error message can print queried() as the accepted set.
  const char* argv[] = {"prog", "--instrs=5", "--seed=3"};
  CliArgs args(3, argv);
  (void)args.get_u64("instructions", 0);  // the real flag
  (void)args.get_u64("seed", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "instrs");
  const auto accepted = args.queried();
  EXPECT_NE(std::find(accepted.begin(), accepted.end(), "instructions"),
            accepted.end());
}

TEST(Table, RendersAlignedRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.25"});
  t.add_row({"b", "100.00"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("100.00"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, Formatting) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.125, 1), "12.5%");
}

// --- JSON string escaping -------------------------------------------------
// Bench tags and benchmark names flow into --json files verbatim; every
// byte a caller can put in a std::string must come out as valid JSON.

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("C:\\temp\\x"), "C:\\\\temp\\\\x");
  EXPECT_EQ(json_escape("\\\""), "\\\\\\\"");
  // Already-escaped input must not be double-unescaped: the escaper is
  // byte-level, so a literal backslash-n becomes backslash-backslash-n.
  EXPECT_EQ(json_escape("\\n"), "\\\\n");
}

TEST(JsonEscape, ShortControlEscapes) {
  EXPECT_EQ(json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
}

TEST(JsonEscape, RemainingControlCharsAreUnicodeEscaped) {
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  // Embedded NUL must survive as \u0000, not truncate the string.
  std::string with_nul = "a";
  with_nul += '\0';
  with_nul += "b";
  EXPECT_EQ(json_escape(with_nul), "a\\u0000b");
}

TEST(JsonEscape, NonAsciiBytesPassThrough) {
  // UTF-8 multi-byte sequences (and any byte >= 0x20) are emitted raw:
  // JSON strings are UTF-8, and \u-escaping them would need surrogate
  // handling for no benefit. High bytes must not be sign-extended into
  // bogus \uffXX escapes.
  const std::string utf8 = "caf\xc3\xa9 \xe2\x82\xac";  // "café €"
  EXPECT_EQ(json_escape(utf8), utf8);
  EXPECT_EQ(json_escape(std::string(1, '\x80')), std::string(1, '\x80'));
  EXPECT_EQ(json_escape(std::string(1, '\xff')), std::string(1, '\xff'));
}

TEST(JsonValue, DumpEscapesKeysAndValues) {
  JsonValue obj = JsonValue::object();
  obj.set("tab\there", JsonValue::string("line\nbreak \"quoted\""));
  const std::string text = obj.dump(0);
  EXPECT_EQ(text, "{\"tab\\there\": \"line\\nbreak \\\"quoted\\\"\"}");
}

TEST(JsonValue, DumpEmitsNoRawControlBytes) {
  // There is no JSON parser in-tree, so the round-trip property is checked
  // structurally: a string containing every escape class dumps to text with
  // no raw control bytes anywhere.
  JsonValue obj = JsonValue::object();
  std::string nasty = "\"\\\b\f\n\r\t";
  nasty += '\x01';
  nasty += "\xc3\xa9";
  obj.set("k", JsonValue::string(nasty));
  const std::string text = obj.dump(0);
  for (const char c : text)
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control byte";
}

// --- JSON parser ------------------------------------------------------------
// The aeep_served wire protocol round-trips frames as dump() -> socket ->
// json_parse(); the parser must invert the builder exactly and reject
// malformed frames with an error rather than a crash or a partial decode.

TEST(JsonParse, RoundTripsBuilderOutput) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::string("submit"));
  doc.set("id", JsonValue::number(u64{18446744073709551615ull}));
  doc.set("ratio", JsonValue::number(0.125));
  doc.set("ok", JsonValue::boolean(true));
  doc.set("none", JsonValue::null());
  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::number(u64{1}));
  arr.push(JsonValue::string("two\n\"quoted\""));
  JsonValue inner = JsonValue::object();
  inner.set("k", JsonValue::boolean(false));
  arr.push(std::move(inner));
  doc.set("items", std::move(arr));

  for (const int indent : {0, 2}) {
    std::string error;
    const auto parsed = json_parse(doc.dump(indent), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    // Dump of the parse must equal dump of the original: same kinds, same
    // key order, same integer/double split.
    EXPECT_EQ(parsed->dump(2), doc.dump(2));
  }
}

TEST(JsonParse, AccessorsReadKindsAndDefaults) {
  const auto v = json_parse(
      R"({"n": 42, "d": 1.5, "s": "x", "b": true, "whole": 3.0})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get_u64("n", 0), 42u);
  EXPECT_DOUBLE_EQ(v->get_double("d", 0), 1.5);
  EXPECT_DOUBLE_EQ(v->get_double("n", 0), 42.0);  // uint widens to double
  EXPECT_EQ(v->get_string("s", ""), "x");
  EXPECT_TRUE(v->get_bool("b", false));
  // A whole double reads back as u64 (far-side parsers may lose the split).
  EXPECT_EQ(v->get_u64("whole", 0), 3u);
  // Kind mismatch and absence both fall back to the default.
  EXPECT_EQ(v->get_u64("s", 7), 7u);
  EXPECT_EQ(v->get_string("missing", "def"), "def");
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8) {
  const auto v = json_parse(R"(["\u0041", "\u00e9", "\u20ac", "\ud83d\ude00"])");
  ASSERT_TRUE(v.has_value());
  const auto& e = v->elements();
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e[0].as_string(), "A");
  EXPECT_EQ(e[1].as_string(), "\xc3\xa9");          // é
  EXPECT_EQ(e[2].as_string(), "\xe2\x82\xac");      // €
  EXPECT_EQ(e[3].as_string(), "\xf0\x9f\x98\x80");  // surrogate pair
}

TEST(JsonParse, RejectsMalformedInput) {
  const char* bad[] = {
      "",                        // empty
      "{",                       // unterminated object
      "[1, 2",                   // unterminated array
      "{\"a\": }",               // missing value
      "{\"a\" 1}",               // missing colon
      "{\"a\": 1,}",             // trailing comma is not accepted
      "\"abc",                   // unterminated string
      "\"bad \\q escape\"",      // unknown escape
      "\"\\u12g4\"",             // bad hex digit
      "01x",                     // trailing garbage on number
      "truest",                  // trailing garbage on literal
      "{} {}",                   // two documents
      "nul",                     // truncated literal
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(json_parse(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonParse, WellFormedUtf8PassesThroughVerbatim) {
  const auto v = json_parse("[\"caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80\"]");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->elements()[0].as_string(),
            "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsInvalidUtf8InStrings) {
  // A single flipped bit inside a wire frame turns an ASCII byte into a
  // stray high byte; the parser must surface that as an error instead of
  // smuggling mojibake into accepted payloads.
  const char* bad[] = {
      "\"gz\x93p\"",          // lone continuation byte ('i' ^ 0xFF)
      "\"\xc3\"",             // truncated 2-byte sequence
      "\"\xc3(\"",            // continuation replaced by ASCII
      "\"\xc0\xaf\"",         // overlong encoding of '/'
      "\"\xe0\x80\x80\"",     // overlong 3-byte encoding
      "\"\xed\xa0\x80\"",     // UTF-8-encoded surrogate
      "\"\xf5\x80\x80\x80\"", // past U+10FFFF
      "\"\xff\"",             // not a UTF-8 lead byte at all
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(json_parse(text, &error).has_value()) << text;
    EXPECT_NE(error.find("UTF-8"), std::string::npos) << text;
  }
}

TEST(JsonParse, DepthLimitStopsNestingBombs) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  std::string error;
  EXPECT_FALSE(json_parse(deep, &error).has_value());
  EXPECT_NE(error.find("deep"), std::string::npos);
  // At a sane depth the same shape parses fine.
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(json_parse(ok).has_value());
}

TEST(JsonParse, NumbersSplitIntegerAndDouble) {
  const auto v = json_parse("[0, 18446744073709551615, -1, 2.5, 1e3]");
  ASSERT_TRUE(v.has_value());
  const auto& e = v->elements();
  ASSERT_EQ(e.size(), 5u);
  EXPECT_EQ(e[0].dump(0), "0");
  EXPECT_EQ(e[1].as_u64(), 18446744073709551615ull);
  // Negative integers carry as doubles (the wire schema is unsigned).
  EXPECT_DOUBLE_EQ(e[2].as_double(), -1.0);
  EXPECT_DOUBLE_EQ(e[3].as_double(), 2.5);
  EXPECT_DOUBLE_EQ(e[4].as_double(), 1000.0);
}

}  // namespace
}  // namespace aeep
