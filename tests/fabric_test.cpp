// Tests for the fault-tolerant sweep fabric (src/fabric/): the shared
// backoff schedule, fleet registry scoring/retirement, ChaosProxy fault
// injection and the typed errors each fault must surface as, wire-frame
// robustness of the server against malformed bytes, the health/drain
// endpoints, bounded access logs, and the coordinator's load-bearing
// claim: a grid run through a (possibly dying) fleet returns metrics
// bit-identical to a local SweepRunner run of the same grid.
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "fabric/backoff.hpp"
#include "fabric/chaos.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/registry.hpp"
#include "server/access_log.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/wire.hpp"
#include "sim/result_json.hpp"
#include "sim/sweep.hpp"

namespace aeep::fabric {
namespace {

server::ServerErrorKind kind_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const server::ServerError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a ServerError";
  return server::ServerErrorKind::kInternal;
}

server::ServerConfig worker_config() {
  server::ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  return cfg;
}

/// A 4-cell grid small enough to run in-process in each test.
std::vector<sim::SweepJob> small_grid() {
  const protect::SchemeKind schemes[] = {protect::SchemeKind::kUniformEcc,
                                         protect::SchemeKind::kNonUniform};
  std::vector<sim::SweepJob> grid;
  for (const char* benchmark : {"gzip", "mcf"}) {
    for (const auto scheme : schemes) {
      sim::SweepJob job;
      job.benchmark = benchmark;
      job.tag = protect::to_string(scheme);
      job.options.scheme = scheme;
      job.options.instructions = 20'000;
      job.options.warmup_instructions = 2'000;
      job.options.seed = 7;
      grid.push_back(std::move(job));
    }
  }
  return grid;
}

/// The canonical metrics every fabric path must reproduce byte-for-byte.
std::vector<std::string> baseline_dumps(
    const std::vector<sim::SweepJob>& grid) {
  const sim::SweepRunner runner(2);
  const auto outcomes = runner.run(grid);
  std::vector<std::string> dumps;
  for (const auto& oc : outcomes) {
    EXPECT_TRUE(oc.ok()) << oc.error;
    dumps.push_back(sim::run_result_json(oc.result).dump(0));
  }
  return dumps;
}

FabricConfig test_config() {
  FabricConfig cfg;
  cfg.backoff.base_ms = 5;
  cfg.backoff.max_ms = 50;
  cfg.call_timeout_ms = 10'000;
  cfg.job_wait_ms = 60'000;
  cfg.straggler_min_ms = 60'000;  // no speculation unless a test asks
  return cfg;
}

/// A port with nothing behind it: bind, read it, close the listener.
u16 dead_port() {
  server::Listener probe("127.0.0.1", 0);
  const u16 port = probe.port();
  probe.close();
  return port;
}

// --- backoff ---------------------------------------------------------------

TEST(Backoff, ZeroJitterIsTheExactGeometricLadder) {
  BackoffPolicy policy;
  policy.base_ms = 50;
  policy.max_ms = 5'000;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Backoff b(policy, 1);
  EXPECT_EQ(b.next_delay_ms(), 50u);
  EXPECT_EQ(b.next_delay_ms(), 100u);
  EXPECT_EQ(b.next_delay_ms(), 200u);
  EXPECT_EQ(b.next_delay_ms(), 400u);
  for (int i = 0; i < 10; ++i) b.next_delay_ms();
  EXPECT_EQ(b.next_delay_ms(), 5'000u);  // capped
  b.reset();
  EXPECT_EQ(b.next_delay_ms(), 50u);
}

TEST(Backoff, SameSeedSameSchedule) {
  const BackoffPolicy policy;  // default jitter 0.5
  Backoff a(policy, 42), b(policy, 42), c(policy, 43);
  bool diverged = false;
  for (int i = 0; i < 8; ++i) {
    const u64 da = a.next_delay_ms();
    EXPECT_EQ(da, b.next_delay_ms());
    diverged = diverged || da != c.next_delay_ms();
  }
  EXPECT_TRUE(diverged) << "different seeds should jitter differently";
}

TEST(Backoff, JitteredDelaysStayWithinTheEnvelope) {
  BackoffPolicy policy;
  policy.base_ms = 100;
  policy.max_ms = 10'000;
  policy.jitter = 0.5;
  Backoff b(policy, 9);
  u64 ceiling = 100;
  for (int i = 0; i < 6; ++i) {
    const u64 d = b.next_delay_ms();
    EXPECT_GE(d, ceiling / 2);
    EXPECT_LE(d, ceiling);
    ceiling = std::min<u64>(ceiling * 2, policy.max_ms);
  }
}

// --- registry --------------------------------------------------------------

TEST(Registry, ParseEndpointForms) {
  const WorkerEndpoint bare = parse_endpoint("7500");
  EXPECT_EQ(bare.host, "127.0.0.1");
  EXPECT_EQ(bare.port, 7500);
  const WorkerEndpoint full = parse_endpoint("10.0.0.2:7501");
  EXPECT_EQ(full.host, "10.0.0.2");
  EXPECT_EQ(full.port, 7501);
  EXPECT_EQ(full.display_name(), "10.0.0.2:7501");
  EXPECT_THROW(parse_endpoint(""), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint(":7500"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:notaport"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:70000"), std::invalid_argument);
}

TEST(Registry, ConsecutiveFailuresRetirePermanently) {
  WorkerRegistry reg({parse_endpoint("7500"), parse_endpoint("7501")}, 3);
  EXPECT_EQ(reg.live(), 2u);
  EXPECT_FALSE(reg.note_failure(0, "a"));
  EXPECT_EQ(reg.state(0), WorkerState::kSuspect);
  EXPECT_FALSE(reg.note_failure(0, "b"));
  EXPECT_TRUE(reg.note_failure(0, "c"));  // third strike retires
  EXPECT_EQ(reg.state(0), WorkerState::kRetired);
  EXPECT_EQ(reg.live(), 1u);
  // Retirement is permanent: successes and further failures are no-ops.
  reg.note_success(0);
  EXPECT_EQ(reg.state(0), WorkerState::kRetired);
  EXPECT_FALSE(reg.note_failure(0, "d"));
  const auto log = reg.retirement_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].worker, "127.0.0.1:7500");
  EXPECT_EQ(log[0].reason, "c");
  EXPECT_EQ(log[0].consecutive_failures, 3u);
}

TEST(Registry, SuccessResetsTheFailureStreak) {
  WorkerRegistry reg({parse_endpoint("7500")}, 3);
  reg.note_failure(0, "a");
  reg.note_failure(0, "b");
  reg.note_success(0);
  EXPECT_EQ(reg.state(0), WorkerState::kHealthy);
  EXPECT_EQ(reg.consecutive_failures(0), 0u);
  // The streak starts over: two more failures still do not retire.
  reg.note_failure(0, "c");
  EXPECT_FALSE(reg.note_failure(0, "d"));
  EXPECT_EQ(reg.live(), 1u);
}

TEST(Registry, RetireAfterZeroNeverRetires) {
  WorkerRegistry reg({parse_endpoint("7500")}, 0);
  for (int i = 0; i < 20; ++i)
    EXPECT_FALSE(reg.note_failure(0, "flap"));
  EXPECT_EQ(reg.state(0), WorkerState::kSuspect);
  EXPECT_EQ(reg.live(), 1u);
}

// --- chaos proxy: fault taxonomy over a real server ------------------------

TEST(Chaos, ZeroFaultPolicyIsTransparent) {
  server::JobServer served(worker_config());
  served.start();
  ChaosProxy proxy("127.0.0.1", served.port(), ChaosPolicy{});
  proxy.start();
  server::Client client("127.0.0.1", proxy.port());
  const JsonValue pong = client.ping();
  EXPECT_EQ(pong.get_string("server", ""), "aeep_served");
  EXPECT_EQ(client.health().get_bool("draining", true), false);
  const ChaosStats s = proxy.stats();
  EXPECT_EQ(s.connections, 1u);
  EXPECT_GE(s.frames_forwarded, 4u);  // two round trips
  EXPECT_EQ(s.killed + s.dropped + s.truncated + s.corrupted + s.delayed, 0u);
  proxy.stop();
  served.stop();
}

TEST(Chaos, CorruptedFramesSurfaceAsProtocolErrors) {
  server::JobServer served(worker_config());
  served.start();
  ChaosPolicy policy;
  policy.corrupt = 1.0;
  ChaosProxy proxy("127.0.0.1", served.port(), policy);
  proxy.start();
  server::Client client("127.0.0.1", proxy.port());
  EXPECT_EQ(kind_of([&] { client.ping(); }),
            server::ServerErrorKind::kProtocol);
  EXPECT_GT(proxy.stats().corrupted, 0u);
  // The server shook off the garbage: a clean connection still works.
  server::Client direct("127.0.0.1", served.port());
  EXPECT_TRUE(direct.ping().get_bool("ok", false));
  proxy.stop();
  served.stop();
}

TEST(Chaos, KilledConnectionsSurfaceAsIoErrors) {
  server::JobServer served(worker_config());
  served.start();
  ChaosPolicy policy;
  policy.kill = 1.0;
  ChaosProxy proxy("127.0.0.1", served.port(), policy);
  proxy.start();
  server::Client client("127.0.0.1", proxy.port());
  EXPECT_EQ(kind_of([&] { client.ping(); }), server::ServerErrorKind::kIo);
  EXPECT_GT(proxy.stats().killed, 0u);
  server::Client direct("127.0.0.1", served.port());
  EXPECT_TRUE(direct.ping().get_bool("ok", false));
  proxy.stop();
  served.stop();
}

TEST(Chaos, TruncatedFramesSurfaceAsIoErrors) {
  server::JobServer served(worker_config());
  served.start();
  ChaosPolicy policy;
  policy.truncate = 1.0;
  ChaosProxy proxy("127.0.0.1", served.port(), policy);
  proxy.start();
  server::Client client("127.0.0.1", proxy.port());
  EXPECT_EQ(kind_of([&] { client.ping(); }), server::ServerErrorKind::kIo);
  EXPECT_GT(proxy.stats().truncated, 0u);
  // The server saw a mid-frame close and must survive it.
  server::Client direct("127.0.0.1", served.port());
  EXPECT_TRUE(direct.ping().get_bool("ok", false));
  proxy.stop();
  served.stop();
}

TEST(Chaos, DroppedFramesTimeOutInsteadOfHanging) {
  server::JobServer served(worker_config());
  served.start();
  ChaosPolicy policy;
  policy.drop = 1.0;
  ChaosProxy proxy("127.0.0.1", served.port(), policy);
  proxy.start();
  server::Client client("127.0.0.1", proxy.port());
  client.set_call_timeout_ms(300);  // never forwarded -> bounded wait
  EXPECT_EQ(kind_of([&] { client.ping(); }), server::ServerErrorKind::kIo);
  EXPECT_GT(proxy.stats().dropped, 0u);
  proxy.stop();
  served.stop();
}

// --- wire-frame robustness: malformed bytes against a live server ----------

TEST(WireRobustness, OversizedDeclaredLengthIsAProtocolError) {
  server::JobServer served(worker_config());
  served.start();
  server::Socket sock = server::connect_to("127.0.0.1", served.port());
  const u8 huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};  // ~2GB declared
  sock.send_all(huge, sizeof(huge));
  // The server answers with a typed protocol error before closing.
  const auto reply = server::recv_frame(sock, 5'000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(kind_of([&] { server::check_reply(*reply); }),
            server::ServerErrorKind::kProtocol);
  server::Client direct("127.0.0.1", served.port());
  EXPECT_TRUE(direct.ping().get_bool("ok", false));
  served.stop();
}

TEST(WireRobustness, GarbagePayloadIsAProtocolError) {
  server::JobServer served(worker_config());
  served.start();
  server::Socket sock = server::connect_to("127.0.0.1", served.port());
  const char payload[] = "this is not json";
  const u32 len = sizeof(payload) - 1;
  const u8 prefix[4] = {static_cast<u8>(len & 0xFF),
                        static_cast<u8>((len >> 8) & 0xFF),
                        static_cast<u8>((len >> 16) & 0xFF),
                        static_cast<u8>((len >> 24) & 0xFF)};
  sock.send_all(prefix, sizeof(prefix));
  sock.send_all(payload, len);
  const auto reply = server::recv_frame(sock, 5'000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(kind_of([&] { server::check_reply(*reply); }),
            server::ServerErrorKind::kProtocol);
  served.stop();
}

TEST(WireRobustness, TruncatedHeaderAndMidFrameDisconnectDoNotWedge) {
  server::JobServer served(worker_config());
  served.start();
  {
    // Two bytes of a four-byte prefix, then gone.
    server::Socket sock = server::connect_to("127.0.0.1", served.port());
    const u8 half[2] = {0x10, 0x00};
    sock.send_all(half, sizeof(half));
  }
  {
    // An honest prefix, a third of the payload, then gone.
    server::Socket sock = server::connect_to("127.0.0.1", served.port());
    const u8 prefix[4] = {30, 0, 0, 0};
    sock.send_all(prefix, sizeof(prefix));
    sock.send_all("{\"type\":\"pi", 10);
  }
  // Neither connection may take the server down or wedge its accept loop.
  server::Client direct("127.0.0.1", served.port());
  EXPECT_TRUE(direct.ping().get_bool("ok", false));
  EXPECT_TRUE(direct.stats().get_bool("ok", false));
  served.stop();
}

// --- health + drain endpoints ----------------------------------------------

TEST(HealthDrain, HealthReportsLoadAndDrainState) {
  server::JobServer served(worker_config());
  served.start();
  server::Client client("127.0.0.1", served.port());
  const JsonValue h = client.health();
  EXPECT_TRUE(h.get_bool("ok", false));
  EXPECT_FALSE(h.get_bool("draining", true));
  EXPECT_EQ(h.get_u64("queued", 99), 0u);
  EXPECT_GT(h.get_u64("queue_capacity", 0), 0u);
  served.stop();
}

TEST(HealthDrain, DrainFlipsTheStateAndBouncesNewSubmits) {
  server::JobServer served(worker_config());
  served.start();
  server::Client client("127.0.0.1", served.port());
  const JsonValue d = client.drain();
  EXPECT_TRUE(d.get_bool("draining", false));
  EXPECT_TRUE(client.health().get_bool("draining", false));
  server::JobSpec spec;
  spec.instructions = 10'000;
  EXPECT_EQ(kind_of([&] { client.submit(spec); }),
            server::ServerErrorKind::kShutdown);
  served.stop();
}

// --- bounded access log ----------------------------------------------------

TEST(AccessLog, RotatesAtTheSizeBoundAndKeepsOneGeneration) {
  const std::string path = testing::TempDir() + "aeep_fabric_access.log";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  server::AccessLog log;
  log.open(path, 512);
  for (int i = 0; i < 40; ++i) {
    JsonValue f = JsonValue::object();
    f.set("i", JsonValue::number(u64(static_cast<unsigned>(i))));
    log.write("tick", std::move(f));
  }
  EXPECT_GT(log.rotated(), 0u);
  log.close();
  std::FILE* rotated = std::fopen((path + ".1").c_str(), "r");
  ASSERT_NE(rotated, nullptr);
  std::fclose(rotated);
  std::FILE* current = std::fopen(path.c_str(), "r");
  ASSERT_NE(current, nullptr);
  std::fclose(current);
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(AccessLog, ConcurrentWritersWithRotationAreRaceFree) {
  // Regression for a TSan-visible race: write() used to early-return on an
  // *unlocked* read of the stream pointer, racing rotate_locked()/close()
  // clearing it on another thread. A tiny rotation bound keeps rotations
  // (and thus writes to the pointer) constant while four writers hammer
  // reads of it; run under -DAEEP_SANITIZE=thread this test fails loudly
  // if the unlocked check ever comes back.
  const std::string path = testing::TempDir() + "aeep_fabric_race.log";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  server::AccessLog log;
  log.open(path, 256);
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&log, w] {
      for (int i = 0; i < 200; ++i) {
        JsonValue f = JsonValue::object();
        f.set("w", JsonValue::number(u64(static_cast<unsigned>(w))));
        f.set("i", JsonValue::number(u64(static_cast<unsigned>(i))));
        log.write("tick", std::move(f));
      }
    });
  }
  // Concurrent readers of the rotation counter (stats path).
  std::thread reader([&log] {
    for (int i = 0; i < 400; ++i) (void)log.rotated();
  });
  for (auto& t : writers) t.join();
  reader.join();
  EXPECT_GT(log.rotated(), 0u);
  log.close();
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(AccessLog, ServerStatsExposeTheRotationCounter) {
  const std::string path =
      testing::TempDir() + "aeep_fabric_served_access.log";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  server::ServerConfig cfg = worker_config();
  cfg.access_log_path = path;
  cfg.access_log_max_bytes = 400;
  server::JobServer served(cfg);
  served.start();
  server::Client client("127.0.0.1", served.port());
  for (int i = 0; i < 20; ++i) client.ping();
  const JsonValue stats = client.stats();
  EXPECT_GT(stats.get_u64("access_log_rotated", 0), 0u);
  served.stop();
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

// --- coordinator -----------------------------------------------------------

TEST(Coordinator, JobSpecFromOptionsRoundTripsExactly) {
  sim::ExperimentOptions options;
  options.scheme = protect::SchemeKind::kSharedEccArray;
  options.cleaning_policy = protect::CleaningPolicy::kDecayCounter;
  options.cleaning_interval = 256 * 1024;
  options.decay_threshold = 3;
  options.ecc_entries_per_set = 2;
  options.instructions = 123'456;
  options.warmup_instructions = 7'890;
  options.seed = 99;
  options.maintain_codes = true;
  const server::JobSpec spec =
      server::job_spec_from_options("mcf", options);
  EXPECT_EQ(spec.benchmark, "mcf");
  const sim::ExperimentOptions back = server::to_experiment_options(spec);
  EXPECT_EQ(back.scheme, options.scheme);
  EXPECT_EQ(back.cleaning_policy, options.cleaning_policy);
  EXPECT_EQ(back.cleaning_interval, options.cleaning_interval);
  EXPECT_EQ(back.decay_threshold, options.decay_threshold);
  EXPECT_EQ(back.ecc_entries_per_set, options.ecc_entries_per_set);
  EXPECT_EQ(back.instructions, options.instructions);
  EXPECT_EQ(back.warmup_instructions, options.warmup_instructions);
  EXPECT_EQ(back.seed, options.seed);
  EXPECT_EQ(back.maintain_codes, options.maintain_codes);
  EXPECT_EQ(back.frontend, options.frontend);
}

TEST(Coordinator, NoWorkersRunsLocallyBitExact) {
  const auto grid = small_grid();
  const auto expected = baseline_dumps(grid);
  Coordinator coord(test_config());  // empty fleet
  const auto outcomes = coord.run(grid);
  ASSERT_EQ(outcomes.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].worker, "local");
    EXPECT_EQ(outcomes[i].metrics.dump(0), expected[i]);
  }
  EXPECT_EQ(coord.stats().jobs_local, grid.size());
}

TEST(Coordinator, FleetRunIsBitExactAgainstTheLocalBaseline) {
  const auto grid = small_grid();
  const auto expected = baseline_dumps(grid);
  server::JobServer w1(worker_config()), w2(worker_config());
  w1.start();
  w2.start();
  FabricConfig cfg = test_config();
  cfg.workers = {parse_endpoint(std::to_string(w1.port())),
                 parse_endpoint(std::to_string(w2.port()))};
  cfg.batch_size = 1;  // spread cells across both workers
  Coordinator coord(std::move(cfg));
  std::size_t progress_calls = 0;
  const auto outcomes = coord.run(
      grid, [&](const FabricProgress& p) {
        ++progress_calls;
        EXPECT_LE(p.completed, p.total);
      });
  ASSERT_EQ(outcomes.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    EXPECT_NE(outcomes[i].worker, "local");
    EXPECT_EQ(outcomes[i].metrics.dump(0), expected[i]);
  }
  EXPECT_EQ(progress_calls, grid.size());
  EXPECT_EQ(coord.stats().jobs_remote, grid.size());
  EXPECT_EQ(coord.stats().jobs_local, 0u);
  EXPECT_TRUE(coord.registry().retirement_log().empty());
  w1.drain();
  w2.drain();
}

TEST(Coordinator, DeadWorkerIsRetiredAndTheGridStillCompletes) {
  const auto grid = small_grid();
  const auto expected = baseline_dumps(grid);
  server::JobServer alive(worker_config());
  alive.start();
  FabricConfig cfg = test_config();
  cfg.workers = {parse_endpoint(std::to_string(alive.port())),
                 parse_endpoint(std::to_string(dead_port()))};
  cfg.retire_after = 2;
  Coordinator coord(std::move(cfg));
  // Probe once up front (failure #1); run() probes again (failure #2),
  // which retires the dead endpoint before any dispatch.
  EXPECT_EQ(coord.probe_fleet(), 2u);  // suspect, but not yet retired
  const auto outcomes = coord.run(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].metrics.dump(0), expected[i]);
  }
  const auto log = coord.registry().retirement_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].worker, coord.registry().endpoint(1).display_name());
  EXPECT_EQ(coord.stats().jobs_remote, grid.size());
  alive.drain();
}

TEST(Coordinator, SoleWorkerDyingMidRunRetiresThroughDispatchFailures) {
  const auto grid = small_grid();
  const auto expected = baseline_dumps(grid);
  FabricConfig cfg = test_config();
  cfg.workers = {parse_endpoint(std::to_string(dead_port()))};
  cfg.retire_after = 3;  // probe fails once, dispatches burn the rest
  Coordinator coord(std::move(cfg));
  const auto outcomes = coord.run(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].worker, "local");
    EXPECT_EQ(outcomes[i].metrics.dump(0), expected[i]);
  }
  const auto log = coord.registry().retirement_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].consecutive_failures, 3u);
  EXPECT_GT(coord.stats().worker_failures, 0u);
}

TEST(Coordinator, AllWorkersDeadDegradesToLocalBitExact) {
  const auto grid = small_grid();
  const auto expected = baseline_dumps(grid);
  FabricConfig cfg = test_config();
  cfg.workers = {parse_endpoint(std::to_string(dead_port())),
                 parse_endpoint(std::to_string(dead_port()))};
  cfg.retire_after = 1;  // one failed probe is enough
  Coordinator coord(std::move(cfg));
  const auto outcomes = coord.run(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].worker, "local");
    EXPECT_EQ(outcomes[i].metrics.dump(0), expected[i]);
  }
  EXPECT_EQ(coord.registry().live(), 0u);
  EXPECT_EQ(coord.registry().retirement_log().size(), 2u);
  EXPECT_EQ(coord.stats().jobs_local, grid.size());
}

TEST(Coordinator, DisabledFallbackFailsCellsInsteadOfComputingThem) {
  const auto grid = small_grid();
  FabricConfig cfg = test_config();
  cfg.workers = {parse_endpoint(std::to_string(dead_port()))};
  cfg.retire_after = 1;
  cfg.allow_local_fallback = false;
  Coordinator coord(std::move(cfg));
  const auto outcomes = coord.run(grid);
  for (const auto& oc : outcomes) {
    EXPECT_FALSE(oc.ok());
    EXPECT_NE(oc.error.find("local fallback is disabled"), std::string::npos)
        << oc.error;
  }
}

TEST(Coordinator, DrainingWorkerIsBenchedAtProbeTime) {
  server::JobServer draining(worker_config());
  draining.start();
  draining.request_drain();
  FabricConfig cfg = test_config();
  cfg.workers = {parse_endpoint(std::to_string(draining.port()))};
  Coordinator coord(std::move(cfg));
  EXPECT_EQ(coord.probe_fleet(), 0u);
  const auto log = coord.registry().retirement_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].reason, "worker is draining");
  draining.stop();
}

TEST(Coordinator, ChaosCorruptionBetweenFleetAndCoordinatorStaysBitExact) {
  const auto grid = small_grid();
  const auto expected = baseline_dumps(grid);
  server::JobServer w1(worker_config()), w2(worker_config());
  w1.start();
  w2.start();
  ChaosPolicy policy;
  policy.corrupt = 0.08;
  policy.seed = 11;
  ChaosProxy proxy("127.0.0.1", w1.port(), policy);
  proxy.start();
  FabricConfig cfg = test_config();
  // Worker 1 is reached only through the corrupting proxy; worker 2 is
  // clean, so the grid can always complete remotely.
  cfg.workers = {parse_endpoint(std::to_string(proxy.port())),
                 parse_endpoint(std::to_string(w2.port()))};
  cfg.retire_after = 0;   // flaky != dead; never bench it
  cfg.max_attempts = 12;  // plenty of retry budget under 8% corruption
  cfg.batch_size = 1;
  cfg.call_timeout_ms = 3'000;
  Coordinator coord(std::move(cfg));
  const auto outcomes = coord.run(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].metrics.dump(0), expected[i]);
  }
  proxy.stop();
  w1.drain();
  w2.drain();
}

}  // namespace
}  // namespace aeep::fabric
