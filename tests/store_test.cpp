// Tests for the content-addressed result store (src/store/): digest
// semantics (what makes two cells "the same work"), the lossless RunResult
// codec, the segmented-LRU index with its deterministic eviction order,
// crash recovery (a torn tail must cost exactly the torn record, nothing
// before it), GC compaction, and run_grid_cached — a warm re-run must be
// bit-exact with zero simulation work.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/result_json.hpp"
#include "sim/sweep.hpp"
#include "store/build_digest.hpp"
#include "store/digest.hpp"
#include "store/result_codec.hpp"
#include "store/result_store.hpp"
#include "store/sweep_cache.hpp"

namespace aeep::store {
namespace {

namespace fs = std::filesystem;

/// A fresh store directory per test (removed first, so reruns start cold).
std::string temp_dir(const char* name) {
  const std::string dir =
      testing::TempDir() + "aeep_store_test_" + name;
  fs::remove_all(dir);
  return dir;
}

Digest key_of(u64 v) { return Digest{v}; }

JsonValue small_payload(u64 n) {
  JsonValue j = JsonValue::object();
  j.set("n", JsonValue::number(n));
  j.set("tag", JsonValue::string("payload-" + std::to_string(n)));
  return j;
}

sim::ExperimentOptions small_options(u64 seed = 42) {
  sim::ExperimentOptions eo;
  eo.instructions = 20'000;
  eo.warmup_instructions = 5'000;
  eo.seed = seed;
  return eo;
}

/// gzip × the three protection schemes, small enough to simulate in-test.
std::vector<sim::SweepJob> small_grid() {
  std::vector<sim::SweepJob> grid;
  for (const auto scheme :
       {protect::SchemeKind::kUniformEcc, protect::SchemeKind::kNonUniform,
        protect::SchemeKind::kSharedEccArray}) {
    sim::SweepJob job{"gzip", small_options(), protect::to_string(scheme)};
    job.options.scheme = scheme;
    grid.push_back(std::move(job));
  }
  return grid;
}

// --- digest ----------------------------------------------------------------

TEST(Digest, HexRoundTripsAndRejectsMalformed) {
  const Digest d{0x0123456789abcdefULL};
  EXPECT_EQ(d.hex(), "0123456789abcdef");
  const auto back = Digest::from_hex(d.hex());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, d);

  EXPECT_FALSE(Digest::from_hex("").has_value());
  EXPECT_FALSE(Digest::from_hex("123").has_value());
  EXPECT_FALSE(Digest::from_hex("0123456789abcdef0").has_value());
  EXPECT_FALSE(Digest::from_hex("0123456789abcdeg").has_value());
}

TEST(Digest, SemanticFieldsChangeItTagAndLocationDoNot) {
  const sim::SweepJob base{"gzip", small_options(), "baseline"};
  const auto d0 = job_digest(base);
  ASSERT_TRUE(d0.has_value());

  // Same spec, different display tag: same work, same cache line.
  sim::SweepJob retagged = base;
  retagged.tag = "renamed";
  EXPECT_EQ(job_digest(retagged), d0);

  // Any semantic knob misses.
  sim::SweepJob other = base;
  other.options.seed = 43;
  EXPECT_NE(job_digest(other), d0);
  other = base;
  other.options.instructions = 30'000;
  EXPECT_NE(job_digest(other), d0);
  other = base;
  other.options.scheme = protect::SchemeKind::kSharedEccArray;
  EXPECT_NE(job_digest(other), d0);
  other = base;
  other.benchmark = "mcf";
  EXPECT_NE(job_digest(other), d0);
}

TEST(Digest, DifferentBuildMissesSameBuildHits) {
  const sim::SweepJob job{"gzip", small_options(), "baseline"};

  set_build_digest_for_testing(0x1111);
  const auto build_a = job_digest(job);
  const auto build_a_again = job_digest(job);
  set_build_digest_for_testing(0x2222);
  const auto build_b = job_digest(job);
  set_build_digest_for_testing(0);  // restore the real build identity
  const auto real = job_digest(job);

  ASSERT_TRUE(build_a.has_value());
  ASSERT_TRUE(build_b.has_value());
  ASSERT_TRUE(real.has_value());
  // Same job under the same build always keys identically...
  EXPECT_EQ(build_a, build_a_again);
  // ...but a different simulator build must cold-miss, never serve
  // payloads the old code computed.
  EXPECT_NE(build_a, build_b);
  EXPECT_NE(build_a, real);
  EXPECT_NE(build_b, real);
}

TEST(Digest, CaptureJobsAreUncacheable) {
  sim::SweepJob job{"gzip", small_options(), ""};
  job.options.capture_path = "/tmp/out.aeept";
  EXPECT_FALSE(job_digest(job).has_value());
}

// --- RunResult codec -------------------------------------------------------

TEST(ResultCodec, RoundTripsARealRunExactly) {
  const std::vector<sim::RunResult> r =
      sim::SweepRunner(1).run_or_throw(small_grid());
  for (const sim::RunResult& result : r) {
    const auto back = run_result_from_json(run_result_to_json(result));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, result) << result.benchmark;
  }
}

TEST(ResultCodec, RejectsForeignDocuments) {
  EXPECT_FALSE(run_result_from_json(JsonValue::object()).has_value());
  // A future codec version degrades to a miss, never a bad decode.
  JsonValue j = run_result_to_json(sim::RunResult{});
  j.set("codec", JsonValue::number(u64{999}));
  EXPECT_FALSE(run_result_from_json(j).has_value());
}

// --- ResultStore: persistence and recovery ---------------------------------

TEST(ResultStore, InsertLookupAndReopenRecoverEverything) {
  const std::string dir = temp_dir("reopen");
  {
    ResultStore store({dir, 64});
    for (u64 i = 1; i <= 3; ++i) store.insert(key_of(i), small_payload(i));
    EXPECT_EQ(store.size(), 3u);
    const auto hit = store.lookup(key_of(2));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->dump(0), small_payload(2).dump(0));
    EXPECT_FALSE(store.lookup(key_of(99)).has_value());
    EXPECT_EQ(store.stats().inserts, 3u);
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(store.stats().misses, 1u);
  }
  ResultStore reopened({dir, 64});
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.stats().recovered_records, 3u);
  EXPECT_EQ(reopened.stats().dropped_records, 0u);
  for (u64 i = 1; i <= 3; ++i) {
    const auto hit = reopened.lookup(key_of(i));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->dump(0), small_payload(i).dump(0));
  }
}

TEST(ResultStore, LaterRecordWinsAfterUpdateAndReopen) {
  const std::string dir = temp_dir("update");
  {
    ResultStore store({dir, 64});
    store.insert(key_of(7), small_payload(1));
    store.insert(key_of(7), small_payload(2));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.stats().inserts, 1u);
    EXPECT_EQ(store.stats().updates, 1u);
    EXPECT_EQ(store.lookup(key_of(7))->dump(0), small_payload(2).dump(0));
  }
  ResultStore reopened({dir, 64});
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.lookup(key_of(7))->dump(0), small_payload(2).dump(0));
}

TEST(ResultStore, TornTailCostsExactlyTheTornRecord) {
  const std::string dir = temp_dir("torn");
  u64 full_bytes = 0;
  u64 two_record_bytes = 0;
  {
    ResultStore store({dir, 64});
    store.insert(key_of(1), small_payload(1));
    store.insert(key_of(2), small_payload(2));
    two_record_bytes = store.disk_bytes();
    store.insert(key_of(3), small_payload(3));
    full_bytes = store.disk_bytes();
  }
  // Simulate a crash mid-append of record 3: cut its payload short.
  fs::resize_file(ResultStore::segment_path(dir), full_bytes - 5);

  ResultStore reopened({dir, 64});
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_EQ(reopened.stats().recovered_records, 2u);
  EXPECT_EQ(reopened.stats().dropped_records, 1u);
  // The torn tail is physically truncated to the last whole record...
  EXPECT_EQ(reopened.disk_bytes(), two_record_bytes);
  EXPECT_EQ(fs::file_size(ResultStore::segment_path(dir)), two_record_bytes);
  // ...everything before it survives, and the store accepts new appends.
  EXPECT_TRUE(reopened.lookup(key_of(1)).has_value());
  EXPECT_TRUE(reopened.lookup(key_of(2)).has_value());
  EXPECT_FALSE(reopened.lookup(key_of(3)).has_value());
  reopened.insert(key_of(4), small_payload(4));
  EXPECT_TRUE(reopened.lookup(key_of(4)).has_value());
}

TEST(ResultStore, CorruptPayloadIsDroppedNeverReturned) {
  const std::string dir = temp_dir("corrupt");
  ResultStore store({dir, 64});
  store.insert(key_of(1), small_payload(1));

  // Flip one payload byte behind the store's back (header is 8 bytes,
  // record framing 9 more; +4 lands inside the key/JSON bytes).
  std::fstream f(ResultStore::segment_path(dir),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(8 + 9 + 4);
  char c = 0;
  f.get(c);
  f.seekp(8 + 9 + 4);
  f.put(static_cast<char>(c ^ 0x40));
  f.close();

  EXPECT_FALSE(store.lookup(key_of(1)).has_value());
  EXPECT_EQ(store.stats().corrupt_payloads, 1u);
  EXPECT_EQ(store.size(), 0u);
}

// --- ResultStore: segmented LRU --------------------------------------------

TEST(ResultStore, EvictionOrderIsDeterministic) {
  const std::string dir = temp_dir("evict");
  ResultStore store({dir, 4});
  for (u64 i = 1; i <= 4; ++i) store.insert(key_of(i), small_payload(i));

  // First lookup is the second touch: key 2 earns protection.
  ASSERT_TRUE(store.lookup(key_of(2)).has_value());

  // Probationary LRU..MRU first (1, 3, 4), then protected (2): the first
  // entries() line is always the next eviction victim.
  auto order = store.entries();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0].key, key_of(1));
  EXPECT_EQ(order[1].key, key_of(3));
  EXPECT_EQ(order[2].key, key_of(4));
  EXPECT_EQ(order[3].key, key_of(2));
  EXPECT_FALSE(order[0].protected_segment);
  EXPECT_TRUE(order[3].protected_segment);

  // A fifth insert at capacity evicts the probationary LRU — key 1, not
  // the protected key 2.
  store.insert(key_of(5), small_payload(5));
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_FALSE(store.lookup(key_of(1)).has_value());
  EXPECT_TRUE(store.lookup(key_of(2)).has_value());

  order = store.entries();
  EXPECT_EQ(order[0].key, key_of(3));  // new probationary LRU
}

TEST(ResultStore, ProtectedOverflowDemotesItsLruNotOutOfTheStore) {
  const std::string dir = temp_dir("demote");
  ResultStore store({dir, 4});  // protected cap = 2
  for (u64 i = 1; i <= 4; ++i) store.insert(key_of(i), small_payload(i));
  // Promote three entries into a two-slot protected segment.
  ASSERT_TRUE(store.lookup(key_of(1)).has_value());
  ASSERT_TRUE(store.lookup(key_of(2)).has_value());
  ASSERT_TRUE(store.lookup(key_of(3)).has_value());

  // Key 1 (protected LRU) fell back to probationary MRU; nothing evicted.
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.stats().evictions, 0u);
  const auto order = store.entries();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0].key, key_of(4));  // untouched probationary
  EXPECT_EQ(order[1].key, key_of(1));  // demoted, one touch from protection
  EXPECT_FALSE(order[1].protected_segment);
  EXPECT_EQ(order[2].key, key_of(2));
  EXPECT_EQ(order[3].key, key_of(3));
  EXPECT_TRUE(order[3].protected_segment);
}

TEST(ResultStore, GcEvictsProbationaryFirstAndCompactsDeadBytes) {
  const std::string dir = temp_dir("gc");
  ResultStore store({dir, 64});
  for (u64 i = 1; i <= 6; ++i) store.insert(key_of(i), small_payload(i));
  // Rewrite key 1 so the segment carries a dead record.
  store.insert(key_of(1), small_payload(11));
  // Protect keys 5 and 6.
  ASSERT_TRUE(store.lookup(key_of(5)).has_value());
  ASSERT_TRUE(store.lookup(key_of(6)).has_value());
  const u64 before = store.disk_bytes();

  // A huge budget evicts nothing but still compacts the dead record.
  EXPECT_EQ(store.gc(u64{1} << 30), 0u);
  EXPECT_EQ(store.size(), 6u);
  EXPECT_LT(store.disk_bytes(), before);
  EXPECT_EQ(store.lookup(key_of(1))->dump(0), small_payload(11).dump(0));

  // A tight budget evicts probationary LRU-first: 2, 3, 4 go before the
  // protected 5 and 6. (Key 1's lookup above protected it too.)
  const u64 keep_three =
      8 + 3 * (store.disk_bytes() - 8) / 6 + 8;  // header + ~3 records
  const u64 evicted = store.gc(keep_three);
  EXPECT_EQ(evicted, 3u);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_LE(store.disk_bytes(), keep_three);
  EXPECT_FALSE(store.lookup(key_of(2)).has_value());
  EXPECT_FALSE(store.lookup(key_of(3)).has_value());
  EXPECT_FALSE(store.lookup(key_of(4)).has_value());
  EXPECT_TRUE(store.lookup(key_of(5)).has_value());
  EXPECT_TRUE(store.lookup(key_of(6)).has_value());

  // The compacted segment reopens clean.
  ResultStore reopened({dir, 64});
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.stats().dropped_records, 0u);
}

// --- SweepCache / run_grid_cached ------------------------------------------

TEST(SweepCache, MetricsOnlyRecordsMissForFullResultConsumers) {
  const std::string dir = temp_dir("metrics_only");
  SweepCache cache({dir, 64});
  const sim::SweepJob job{"gzip", small_options(), "x"};

  JsonValue metrics = JsonValue::object();
  metrics.set("ipc", JsonValue::number(1.25));
  cache.insert_metrics(job, metrics);

  // Metrics consumers (coordinator, server replies) hit...
  const auto m = cache.lookup_metrics(job);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->dump(0), metrics.dump(0));
  // ...full-result consumers (benches) miss rather than fabricate.
  EXPECT_FALSE(cache.lookup_result(job).has_value());

  const SweepCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
}

TEST(SweepCache, WarmRunGridCachedIsBitExactWithZeroSimulation) {
  const std::string dir = temp_dir("warm");
  const auto grid = small_grid();
  const sim::SweepRunner runner(2);

  SweepCache cold({dir, 64});
  std::vector<double> cold_walls;
  std::vector<std::size_t> completed_seq;
  const auto cold_results = run_grid_cached(
      runner, grid, &cold,
      [&](const sim::SweepProgress& p) { completed_seq.push_back(p.completed); },
      &cold_walls);
  ASSERT_EQ(cold_results.size(), grid.size());
  EXPECT_EQ(cold.stats().hits, 0u);
  EXPECT_EQ(cold.stats().misses, grid.size());
  EXPECT_EQ(cold.stats().inserts, grid.size());
  EXPECT_EQ(completed_seq.size(), grid.size());

  // The same grid against a reopened store: every cell served from disk,
  // the runner's pool never touched, results field-for-field identical.
  SweepCache warm({dir, 64});
  completed_seq.clear();
  std::vector<double> warm_walls;
  std::vector<char> saw_job(grid.size(), 0);
  const auto warm_results = run_grid_cached(
      runner, grid, &warm,
      [&](const sim::SweepProgress& p) {
        completed_seq.push_back(p.completed);
        saw_job[p.job_index] = 1;
        EXPECT_EQ(p.total, grid.size());
        ASSERT_NE(p.outcome, nullptr);
        EXPECT_TRUE(p.outcome->ok());
      },
      &warm_walls);
  EXPECT_EQ(warm.stats().hits, grid.size());
  EXPECT_EQ(warm.stats().misses, 0u);
  EXPECT_EQ(warm.stats().inserts, 0u);
  EXPECT_EQ(warm_results, cold_results);

  // Progress stays 1..N and covers every cell; cached cells report zero
  // wall time (nothing ran).
  ASSERT_EQ(completed_seq.size(), grid.size());
  for (std::size_t i = 0; i < completed_seq.size(); ++i)
    EXPECT_EQ(completed_seq[i], i + 1);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_TRUE(saw_job[i]) << i;
    EXPECT_EQ(warm_walls[i], 0.0) << i;
  }

  // And the cached metrics view renders exactly like a fresh run's.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto m = warm.lookup_metrics(grid[i]);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->dump(0), sim::run_result_json(cold_results[i]).dump(0));
  }
}

TEST(SweepCache, PartialHitsRunOnlyTheMisses) {
  const std::string dir = temp_dir("partial");
  const auto grid = small_grid();
  const sim::SweepRunner runner(2);

  SweepCache cache({dir, 64});
  // Pre-seed the middle cell only.
  const auto seeded =
      runner.run_or_throw({grid[1]}, nullptr, nullptr);
  cache.insert(grid[1], seeded[0]);
  cache.reset_stats();

  const auto results = run_grid_cached(runner, grid, &cache);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, grid.size() - 1);
  EXPECT_EQ(cache.stats().inserts, grid.size() - 1);
  EXPECT_EQ(results[1], seeded[0]);
  // Outcomes land at their grid positions regardless of hit/miss split.
  const auto all = runner.run_or_throw(grid);
  EXPECT_EQ(results, all);
}

}  // namespace
}  // namespace aeep::store
