// Tests for the synthetic SPEC2000-like workload generators: profile
// inventory, determinism, op-mix calibration, address-range discipline,
// write-sweep generational structure, and loop-branch behaviour.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/generator.hpp"
#include "workload/profile.hpp"

namespace aeep::workload {
namespace {

using cpu::MicroOp;
using cpu::OpClass;

TEST(Profiles, FourteenBenchmarksSevenEach) {
  const auto& all = spec2000_profiles();
  EXPECT_EQ(all.size(), 14u);
  EXPECT_EQ(fp_profiles().size(), 7u);
  EXPECT_EQ(int_profiles().size(), 7u);
}

TEST(Profiles, PaperBenchmarksPresent) {
  // Benchmarks the paper names explicitly in its discussion.
  for (const char* name :
       {"applu", "swim", "mgrid", "equake", "mcf", "apsi", "mesa", "gap",
        "parser"}) {
    EXPECT_NO_THROW(profile_by_name(name)) << name;
  }
  EXPECT_THROW(profile_by_name("quake3"), std::out_of_range);
}

TEST(Profiles, NamesUniqueAndFieldsSane) {
  std::set<std::string> names;
  for (const auto& p : spec2000_profiles()) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
    EXPECT_GT(p.load_frac, 0.0);
    EXPECT_GT(p.store_frac, 0.0);
    EXPECT_LT(p.load_frac + p.store_frac, 0.7);
    EXPECT_GE(p.body_uops, 2u);
    EXPECT_GE(p.data_footprint, p.write_footprint);
    EXPECT_GE(p.write_footprint, p.region_bytes);
    EXPECT_GT(p.region_write_passes, 0.0);
    EXPECT_GT(p.code_footprint, 0u);
  }
}

class GeneratorTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratorTest, DeterministicForSameSeed) {
  SyntheticWorkload a(profile_by_name(GetParam()), 7);
  SyntheticWorkload b(profile_by_name(GetParam()), 7);
  for (int i = 0; i < 5000; ++i) {
    const MicroOp x = a.next(), y = b.next();
    EXPECT_EQ(x.pc, y.pc);
    EXPECT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
    EXPECT_EQ(x.mem_addr, y.mem_addr);
    EXPECT_EQ(x.branch_taken, y.branch_taken);
  }
}

TEST_P(GeneratorTest, SeedsChangeTheStream) {
  SyntheticWorkload a(profile_by_name(GetParam()), 1);
  SyntheticWorkload b(profile_by_name(GetParam()), 2);
  unsigned diff = 0;
  for (int i = 0; i < 2000; ++i) {
    const MicroOp x = a.next(), y = b.next();
    if (x.mem_addr != y.mem_addr || x.cls != y.cls) ++diff;
  }
  EXPECT_GT(diff, 100u);
}

TEST_P(GeneratorTest, OpMixMatchesProfile) {
  const auto& p = profile_by_name(GetParam());
  SyntheticWorkload w(p, 3);
  const int n = 200000;
  std::map<OpClass, int> counts;
  for (int i = 0; i < n; ++i) ++counts[w.next().cls];
  const double branch_frac =
      static_cast<double>(counts[OpClass::kBranch]) / n;
  // One branch per body (body length varies +/-50% around the mean).
  EXPECT_NEAR(branch_frac, 1.0 / p.body_uops, 0.35 / p.body_uops);
  // Loads/stores are rolled on non-branch slots.
  const double non_branch = 1.0 - branch_frac;
  EXPECT_NEAR(static_cast<double>(counts[OpClass::kLoad]) / n,
              p.load_frac * non_branch, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[OpClass::kStore]) / n,
              p.store_frac * non_branch, 0.02);
}

TEST_P(GeneratorTest, AddressesStayInFootprints) {
  const auto& p = profile_by_name(GetParam());
  SyntheticWorkload w(p, 4);
  for (int i = 0; i < 100000; ++i) {
    const MicroOp op = w.next();
    if (op.cls == OpClass::kLoad || op.cls == OpClass::kStore) {
      EXPECT_GE(op.mem_addr, SyntheticWorkload::kDataBase);
      EXPECT_LT(op.mem_addr, SyntheticWorkload::kDataBase + p.data_footprint);
      EXPECT_EQ(op.mem_addr % 8, 0u);
      if (op.cls == OpClass::kStore) {
        EXPECT_LT(op.mem_addr,
                  SyntheticWorkload::kDataBase + p.write_footprint);
      }
    } else {
      EXPECT_GE(op.pc, SyntheticWorkload::kCodeBase);
      // Loop bodies may overrun the footprint boundary by up to one body
      // before the wrap check at the branch.
      EXPECT_LT(op.pc, SyntheticWorkload::kCodeBase + p.code_footprint +
                           4 * (2 * p.body_uops));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, GeneratorTest,
                         ::testing::Values("applu", "swim", "mesa", "mcf",
                                           "gzip", "parser", "art"));

TEST(Generator, BranchesFormLoops) {
  SyntheticWorkload w(profile_by_name("gzip"), 5);
  // Track per-PC behaviour: a branch site should be taken several times
  // with a constant target, then fall through.
  std::map<Addr, std::pair<unsigned, unsigned>> taken_not;  // pc -> (t, nt)
  std::map<Addr, std::set<Addr>> targets;
  for (int i = 0; i < 300000; ++i) {
    const MicroOp op = w.next();
    if (op.cls != OpClass::kBranch) continue;
    auto& [t, nt] = taken_not[op.pc];
    op.branch_taken ? ++t : ++nt;
    targets[op.pc].insert(op.branch_target);
  }
  ASSERT_GT(taken_not.size(), 5u);
  u64 total_taken = 0, total_not = 0;
  for (const auto& [pc, tn] : taken_not) {
    total_taken += tn.first;
    total_not += tn.second;
    EXPECT_EQ(targets[pc].size(), 1u) << "unstable target at " << pc;
  }
  // Loop-dominated: mostly taken (back edges), with regular exits.
  EXPECT_GT(total_taken, total_not * 2);
  EXPECT_GT(total_not, 0u);
}

TEST(Generator, StoreSweepCoversWriteFootprintLines) {
  const auto& p = profile_by_name("swim");
  SyntheticWorkload w(p, 6);
  std::set<Addr> lines;
  // Run long enough for the sweep (with revisits) to cover everything.
  const u64 need_stores = static_cast<u64>(
      static_cast<double>(p.write_footprint / 64) * p.region_write_passes * 8);
  u64 seen_stores = 0;
  while (seen_stores < need_stores) {
    const MicroOp op = w.next();
    if (op.cls == OpClass::kStore) {
      lines.insert(op.mem_addr & ~Addr{63});
      ++seen_stores;
    }
  }
  const u64 total_lines = p.write_footprint / 64;
  EXPECT_GT(lines.size(), total_lines * 9 / 10);
}

TEST(Generator, StoresRevisitLinesWithinActivation) {
  // region_write_passes > 1 means the same line is stored repeatedly within
  // one activation — the behaviour that sets written bits.
  const auto& p = profile_by_name("apsi");
  SyntheticWorkload w(p, 7);
  std::map<Addr, unsigned> per_line;
  for (int i = 0; i < 200000; ++i) {
    const MicroOp op = w.next();
    if (op.cls == OpClass::kStore) ++per_line[op.mem_addr & ~Addr{63}];
  }
  unsigned multi = 0;
  for (const auto& [line, n] : per_line)
    if (n >= 2) ++multi;
  EXPECT_GT(multi, per_line.size() / 2);
}

TEST(Generator, DependencyDistancesBounded) {
  const auto& p = profile_by_name("gcc");
  SyntheticWorkload w(p, 8);
  unsigned with_dep = 0;
  for (int i = 0; i < 50000; ++i) {
    const MicroOp op = w.next();
    EXPECT_LE(op.dep1, p.max_dep_dist);
    EXPECT_LE(op.dep2, p.max_dep_dist);
    if (op.dep1) ++with_dep;
  }
  // dep1_prob of ops carry a first dependency.
  EXPECT_NEAR(static_cast<double>(with_dep) / 50000, p.dep1_prob, 0.03);
}

TEST(Generator, PcAdvancesWithinBody) {
  SyntheticWorkload w(profile_by_name("mcf"), 9);
  MicroOp prev = w.next();
  for (int i = 0; i < 1000; ++i) {
    const MicroOp op = w.next();
    if (prev.cls != OpClass::kBranch) {
      EXPECT_EQ(op.pc, prev.pc + 4);
    } else if (prev.branch_taken) {
      EXPECT_EQ(op.pc, prev.branch_target);
    }
    prev = op;
  }
}

}  // namespace
}  // namespace aeep::workload
