// Integration tests: the full system (core + L1s + write buffer + L2 +
// bus + workload) running end-to-end, checking cross-module invariants the
// paper's evaluation relies on.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/system.hpp"

namespace aeep::sim {
namespace {

ExperimentOptions quick(protect::SchemeKind scheme, Cycle interval = 0) {
  ExperimentOptions eo;
  eo.scheme = scheme;
  eo.cleaning_interval = interval;
  eo.instructions = 150'000;
  eo.warmup_instructions = 50'000;
  eo.seed = 11;
  return eo;
}

TEST(Integration, RunProducesSaneMetrics) {
  const RunResult r =
      run_benchmark("gzip", quick(protect::SchemeKind::kUniformEcc));
  EXPECT_EQ(r.core.committed, 150'000u);
  EXPECT_GT(r.core.cycles, 0u);
  EXPECT_GT(r.ipc(), 0.05);
  EXPECT_LT(r.ipc(), 4.0);
  EXPECT_GT(r.core.loads, 0u);
  EXPECT_GT(r.core.stores, 0u);
  EXPECT_GT(r.core.branches, 0u);
  EXPECT_GE(r.avg_dirty_fraction, 0.0);
  EXPECT_LE(r.avg_dirty_fraction, 1.0);
  EXPECT_GT(r.l1d.accesses(), 0u);
  EXPECT_GT(r.l2.accesses(), 0u);
}

TEST(Integration, DeterministicAcrossRuns) {
  const RunResult a =
      run_benchmark("vpr", quick(protect::SchemeKind::kSharedEccArray, 1 << 18));
  const RunResult b =
      run_benchmark("vpr", quick(protect::SchemeKind::kSharedEccArray, 1 << 18));
  EXPECT_EQ(a.core.cycles, b.core.cycles);
  EXPECT_EQ(a.wb_total(), b.wb_total());
  EXPECT_DOUBLE_EQ(a.avg_dirty_fraction, b.avg_dirty_fraction);
}

TEST(Integration, SchemeDoesNotChangeTimingWithoutCleaning) {
  // Uniform ECC and unbounded non-uniform differ only in stored check bits;
  // with cleaning off they must produce identical timing and dirty stats.
  const RunResult u =
      run_benchmark("gcc", quick(protect::SchemeKind::kUniformEcc));
  const RunResult n =
      run_benchmark("gcc", quick(protect::SchemeKind::kNonUniform));
  EXPECT_EQ(u.core.cycles, n.core.cycles);
  EXPECT_DOUBLE_EQ(u.avg_dirty_fraction, n.avg_dirty_fraction);
  EXPECT_EQ(u.wb_total(), n.wb_total());
}

TEST(Integration, CleaningReducesDirtyLines) {
  const RunResult org =
      run_benchmark("mesa", quick(protect::SchemeKind::kNonUniform));
  const RunResult cleaned =
      run_benchmark("mesa", quick(protect::SchemeKind::kNonUniform, 1 << 16));
  EXPECT_LT(cleaned.avg_dirty_fraction, org.avg_dirty_fraction * 0.8);
  EXPECT_GT(cleaned.wb_cleaning, 0u);
  EXPECT_EQ(org.wb_cleaning, 0u);
}

TEST(Integration, SharedEccArrayCapsDirtyAtOnePerSet) {
  auto eo = quick(protect::SchemeKind::kSharedEccArray);
  // mcf sweeps new lines fastest (2 passes/region), so 400K micro-ops give
  // write coverage beyond the 256KB set-aliasing distance.
  eo.instructions = 400'000;
  const RunResult r = run_benchmark("mcf", eo);
  // Peak dirty lines can never exceed the number of sets (4096).
  EXPECT_LE(r.peak_dirty_lines, 4096u);
  EXPECT_GT(r.wb_ecc, 0u);  // wide write coverage must hit entry evictions
}

TEST(Integration, SharedEccArrayMoreEntriesFewerEccWb) {
  auto eo1 = quick(protect::SchemeKind::kSharedEccArray);
  eo1.instructions = 400'000;
  eo1.ecc_entries_per_set = 1;
  auto eo4 = eo1;
  eo4.ecc_entries_per_set = 4;
  const RunResult k1 = run_benchmark("mcf", eo1);
  const RunResult k4 = run_benchmark("mcf", eo4);
  EXPECT_GT(k1.wb_ecc, k4.wb_ecc);
  EXPECT_LE(k4.peak_dirty_lines, 4u * 4096u);
}

TEST(Integration, WriteBufferCoalescesAndDrains) {
  const RunResult r =
      run_benchmark("swim", quick(protect::SchemeKind::kUniformEcc));
  EXPECT_GT(r.wbuf.stores, 0u);
  EXPECT_GT(r.wbuf.drains, 0u);
  // Every non-coalesced store becomes one drain; entries left over from the
  // warm-up phase (stats reset) or still buffered at the end shift the
  // balance by at most the buffer capacity either way.
  EXPECT_LE(r.wbuf.drains, r.wbuf.stores - r.wbuf.coalesced + 16);
  EXPECT_GE(r.wbuf.drains + 16, r.wbuf.stores - r.wbuf.coalesced);
}

TEST(Integration, WritebacksReachTheBus) {
  const RunResult r =
      run_benchmark("equake", quick(protect::SchemeKind::kNonUniform, 1 << 16));
  EXPECT_EQ(r.bus.writes, r.wb_total());
  EXPECT_EQ(r.bus.bytes_written, r.wb_total() * 64);
}

TEST(Integration, L2SeesOnlyMissesAndDrains) {
  const RunResult r =
      run_benchmark("art", quick(protect::SchemeKind::kUniformEcc));
  // L2 reads = L1I misses + L1D load misses.
  EXPECT_EQ(r.l2.reads,
            (r.l1i.reads - r.l1i.read_hits) + (r.l1d.reads - r.l1d.read_hits));
  // L2 writes = write-buffer drains.
  EXPECT_EQ(r.l2.writes, r.wbuf.drains);
}

TEST(Integration, DataIntegrityEndToEnd) {
  // With real check bits maintained and no fault injection, every valid L2
  // line must decode clean, and every *clean* line must equal memory.
  SystemConfig cfg;
  cfg.benchmark = "gzip";
  cfg.seed = 13;
  cfg.warmup_instructions = 0;
  cfg.instructions = 120'000;
  cfg.hierarchy.l2.scheme = protect::SchemeKind::kSharedEccArray;
  cfg.hierarchy.l2.cleaning_interval = 1 << 16;
  cfg.hierarchy.l2.maintain_codes = true;
  System system(cfg);
  system.run();
  system.hierarchy().flush_write_buffer(system.core().now());

  auto& l2 = system.hierarchy().l2();
  auto& cache = l2.cache_model();
  auto& memory = system.hierarchy().memory();
  const auto& geom = cfg.hierarchy.l2.geometry;
  u64 checked = 0, clean_checked = 0;
  for (u64 s = 0; s < geom.num_sets(); ++s) {
    for (unsigned w = 0; w < geom.ways; ++w) {
      const auto& m = cache.meta(s, w);
      if (!m.valid) continue;
      const auto rc = l2.scheme().check_read(s, w, memory);
      ASSERT_EQ(rc.outcome, protect::ReadOutcome::kOk)
          << "set " << s << " way " << w;
      ++checked;
      if (!m.dirty) {
        const auto data = cache.data(s, w);
        std::vector<u64> mem_line(data.size());
        memory.read_line(cache.line_addr(s, w), mem_line);
        ASSERT_TRUE(std::equal(data.begin(), data.end(), mem_line.begin()))
            << "clean line diverged from memory at set " << s;
        ++clean_checked;
      }
    }
  }
  EXPECT_GT(checked, 1000u);
  EXPECT_GT(clean_checked, 100u);
}

TEST(Integration, ExperimentHelpers) {
  EXPECT_EQ(all_benchmarks().size(), 14u);
  EXPECT_EQ(fp_benchmarks().size(), 7u);
  EXPECT_EQ(int_benchmarks().size(), 7u);
  EXPECT_NE(table1_text().find("64-entry RUU"), std::string::npos);
  const auto cfg = make_system_config("mcf", quick(protect::SchemeKind::kNonUniform));
  EXPECT_EQ(cfg.benchmark, "mcf");
  EXPECT_EQ(cfg.hierarchy.l2.scheme, protect::SchemeKind::kNonUniform);
}

TEST(Integration, SuiteRunnerPreservesOrder) {
  auto eo = quick(protect::SchemeKind::kUniformEcc);
  eo.instructions = 30'000;
  eo.warmup_instructions = 0;
  const auto rs = run_suite({"gzip", "mcf"}, eo);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].benchmark, "gzip");
  EXPECT_EQ(rs[1].benchmark, "mcf");
  EXPECT_FALSE(rs[0].floating_point);
}

}  // namespace
}  // namespace aeep::sim
