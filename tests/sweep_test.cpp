// Tests for the parallel sweep engine: determinism across worker counts
// (the load-bearing guarantee — parallelism must never change results),
// per-job failure capture, progress reporting, and the run_suite fan-out.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <vector>

#include "cache/write_buffer.hpp"
#include "sim/sweep.hpp"

namespace aeep::sim {
namespace {

ExperimentOptions small_options(u64 seed = 42) {
  ExperimentOptions eo;
  eo.instructions = 20'000;
  eo.warmup_instructions = 5'000;
  eo.seed = seed;
  return eo;
}

/// A mixed grid: two benchmarks × {baseline, cleaning, shared-ECC}.
std::vector<SweepJob> small_grid() {
  std::vector<SweepJob> grid;
  for (const char* name : {"gzip", "mcf"}) {
    SweepJob base{name, small_options(), "baseline"};
    grid.push_back(base);

    SweepJob cleaning = base;
    cleaning.options.scheme = protect::SchemeKind::kNonUniform;
    cleaning.options.cleaning_interval = u64{64} << 10;
    cleaning.tag = "cleaning";
    grid.push_back(cleaning);

    SweepJob shared = base;
    shared.options.scheme = protect::SchemeKind::kSharedEccArray;
    shared.options.cleaning_interval = u64{64} << 10;
    shared.tag = "shared";
    grid.push_back(shared);
  }
  return grid;
}

TEST(SweepRunner, SerialAndParallelResultsAreIdentical) {
  const auto grid = small_grid();
  const std::vector<RunResult> serial = SweepRunner(1).run_or_throw(grid);
  // 8 workers on any machine (threads multiplex fine on fewer cores); the
  // scheduling order differs from serial but the results must not.
  const std::vector<RunResult> parallel = SweepRunner(8).run_or_throw(grid);

  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i])
        << grid[i].benchmark << ":" << grid[i].tag;
  }
}

TEST(SweepRunner, RepeatedParallelRunsAreIdentical) {
  const auto grid = small_grid();
  const std::vector<RunResult> a = SweepRunner(4).run_or_throw(grid);
  const std::vector<RunResult> b = SweepRunner(4).run_or_throw(grid);
  EXPECT_EQ(a, b);
}

TEST(SweepRunner, CapturesJobFailuresWithoutAborting) {
  std::vector<SweepJob> grid = small_grid();
  grid.insert(grid.begin() + 1, {"no-such-benchmark", small_options(), "bad"});

  const std::vector<SweepOutcome> outcomes = SweepRunner(4).run(grid);
  ASSERT_EQ(outcomes.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i == 1) {
      EXPECT_FALSE(outcomes[i].ok());
      EXPECT_NE(outcomes[i].error.find("unknown benchmark"), std::string::npos)
          << outcomes[i].error;
    } else {
      EXPECT_TRUE(outcomes[i].ok()) << outcomes[i].error;
      EXPECT_GT(outcomes[i].result.core.committed, 0u);
    }
  }
}

TEST(SweepRunner, RunOrThrowReportsFirstFailingJob) {
  std::vector<SweepJob> grid = small_grid();
  grid.push_back({"no-such-benchmark", small_options(), "bad"});
  try {
    SweepRunner(2).run_or_throw(grid);
    FAIL() << "expected run_or_throw to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-benchmark"), std::string::npos) << what;
    EXPECT_NE(what.find("bad"), std::string::npos) << what;
  }
}

TEST(SweepRunner, ProgressCoversEveryJobExactlyOnce) {
  const auto grid = small_grid();
  std::mutex mutex;
  std::vector<std::size_t> completed_seq;
  std::set<std::size_t> indices;
  const auto progress = [&](const SweepProgress& p) {
    const std::lock_guard<std::mutex> lock(mutex);
    completed_seq.push_back(p.completed);
    indices.insert(p.job_index);
    EXPECT_EQ(p.total, grid.size());
    ASSERT_NE(p.job, nullptr);
    ASSERT_NE(p.outcome, nullptr);
  };
  SweepRunner(3).run(grid, progress);

  ASSERT_EQ(completed_seq.size(), grid.size());
  // The callback is serialised, so completed counts 1..N in order.
  for (std::size_t i = 0; i < completed_seq.size(); ++i)
    EXPECT_EQ(completed_seq[i], i + 1);
  EXPECT_EQ(indices.size(), grid.size());
}

TEST(SweepRunner, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(SweepRunner::default_jobs(), 1u);
  EXPECT_EQ(SweepRunner(0).jobs(), SweepRunner::default_jobs());
  EXPECT_EQ(SweepRunner(5).jobs(), 5u);
}

TEST(SweepRunner, WriteBufferFreeListStaysBounded) {
  // Recycled line storage must never outgrow min(capacity, kFreeListBound),
  // and every run should report the high-water mark it actually reached.
  const auto grid = small_grid();
  const std::vector<RunResult> results = SweepRunner(2).run_or_throw(grid);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    EXPECT_LE(r.wbuf.free_list_peak,
              std::min<std::size_t>(16, cache::WriteBuffer::kFreeListBound))
        << grid[i].benchmark << ":" << grid[i].tag;
    EXPECT_GT(r.wbuf.free_list_peak, 0u)
        << grid[i].benchmark << ":" << grid[i].tag
        << " drained stores without ever recycling storage";
  }
}

TEST(RunSuite, ParallelSuiteMatchesSerialSuite) {
  const ExperimentOptions eo = small_options();
  const std::vector<std::string> names = {"gzip", "mcf", "swim"};
  const auto serial = run_suite(names, eo, 1);
  const auto parallel = run_suite(names, eo, 4);
  ASSERT_EQ(serial.size(), names.size());
  EXPECT_EQ(serial, parallel);
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(serial[i].benchmark, names[i]);
}

}  // namespace
}  // namespace aeep::sim
