// Tests for the paper's contribution: the area model (§5.2 numbers), the
// cleaning FSM (§3.2), the three protection schemes, and the ProtectedL2
// controller (write-back classification, dirty-residency integral, the
// shared-ECC-array invariant).
#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "mem/bus.hpp"
#include "mem/memory_store.hpp"
#include "protect/area_model.hpp"
#include "protect/cleaning_logic.hpp"
#include "protect/non_uniform.hpp"
#include "protect/protected_l2.hpp"
#include "protect/shared_ecc_array.hpp"
#include "protect/uniform_ecc.hpp"

namespace aeep::protect {
namespace {

// ---------------------------------------------------------------------------
// Area model — the paper's §5.2 arithmetic, exactly.
// ---------------------------------------------------------------------------

TEST(AreaModel, ConventionalIs132KB) {
  const auto r = conventional_area(cache::kL2Geometry);
  // 128KB data ECC + 2KB tag parity + 2KB status parity.
  EXPECT_DOUBLE_EQ(r.total_kib(), 132.0);
  ASSERT_EQ(r.components.size(), 3u);
  EXPECT_EQ(r.components[0].bits, u64{128} * KiB * 8);
}

TEST(AreaModel, ProposedIs54KB) {
  const auto r = proposed_area(cache::kL2Geometry, 1);
  // 16KB parity + 32KB ECC array + 2KB written + 2KB tag + 2KB status.
  EXPECT_DOUBLE_EQ(r.total_kib(), 54.0);
}

TEST(AreaModel, ReductionIs59Percent) {
  const auto conv = conventional_area(cache::kL2Geometry);
  const auto prop = proposed_area(cache::kL2Geometry, 1);
  EXPECT_NEAR(prop.reduction_vs(conv), 0.59, 0.005);  // paper: 59%
}

TEST(AreaModel, Section31EstimateSaves48KB) {
  // §3.1: "16KB parity ... around 64KB ECC for dirty cache lines, saving
  // 48KB = 128KB - (64KB + 16KB)". Data components only.
  const auto r = non_uniform_area(cache::kL2Geometry, 0.5);
  double data_kib = 0;
  for (const auto& c : r.components)
    if (c.name.find("parity (1b / 64b)") != std::string::npos ||
        c.name.find("ECC for dirty") != std::string::npos)
      data_kib += static_cast<double>(c.bits) / 8.0 / 1024.0;
  EXPECT_DOUBLE_EQ(data_kib, 16.0 + 64.0);
}

TEST(AreaModel, PerLineBitCounts) {
  EXPECT_EQ(ecc_bits_per_line(cache::kL2Geometry), 64u);    // 8B per 64B line
  EXPECT_EQ(parity_bits_per_line(cache::kL2Geometry), 8u);  // 1b per 64b
}

TEST(AreaModel, EccArrayScalesWithEntries) {
  const auto k1 = proposed_area(cache::kL2Geometry, 1);
  const auto k4 = proposed_area(cache::kL2Geometry, 4);
  // k=4 is per-way ECC: three more 32KB arrays than k=1.
  EXPECT_DOUBLE_EQ(k4.total_kib() - k1.total_kib(), 96.0);
}

// ---------------------------------------------------------------------------
// Cleaning FSM
// ---------------------------------------------------------------------------

TEST(CleaningLogic, VisitsEverySetOncePerInterval) {
  CleaningLogic fsm(4096, 1 << 20);
  EXPECT_EQ(fsm.set_period(), (1u << 20) / 4096);
  std::vector<u64> visited;
  for (Cycle t = 0; t <= (1 << 20); ++t) {
    while (auto s = fsm.due(t)) visited.push_back(*s);
  }
  ASSERT_EQ(visited.size(), 4096u);
  for (u64 i = 0; i < visited.size(); ++i) EXPECT_EQ(visited[i], i);
}

TEST(CleaningLogic, WrapsAround) {
  CleaningLogic fsm(4, 40);  // set period 10
  std::vector<u64> visited;
  for (Cycle t = 0; t <= 85; ++t) {
    while (auto s = fsm.due(t)) visited.push_back(*s);
  }
  EXPECT_EQ(visited, (std::vector<u64>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(CleaningLogic, DisabledNeverFires) {
  CleaningLogic fsm(4096, 0);
  EXPECT_FALSE(fsm.enabled());
  for (Cycle t = 0; t < 100000; t += 997) EXPECT_FALSE(fsm.due(t).has_value());
}

TEST(CleaningLogic, CatchesUpAfterTimeJump) {
  CleaningLogic fsm(8, 80);  // one set per 10 cycles
  unsigned fired = 0;
  while (fsm.due(55)) ++fired;
  EXPECT_EQ(fired, 5u);  // due at 10,20,30,40,50
}

TEST(CleaningLogic, LatchWidthMatchesPaper) {
  CleaningLogic fsm(4096, 1 << 20);
  EXPECT_EQ(fsm.latch_bits(), 12u);  // "the latch is 12 bits wide"
}

// ---------------------------------------------------------------------------
// Scheme behaviour on a small cache
// ---------------------------------------------------------------------------

class SchemeTest : public ::testing::Test {
 protected:
  // 4 sets x 4 ways x 64B.
  SchemeTest() : cache_(cache::CacheGeometry{1024, 4, 64}) {}

  Addr install(u64 set, unsigned way, u64 tag) {
    const Addr a = cache_.geometry().addr_of(tag, set);
    std::vector<u64> payload(8);
    memory_.read_line(a, payload);
    cache_.install(set, way, a, 0, payload);
    return a;
  }

  cache::Cache cache_;
  mem::MemoryStore memory_;
};

TEST_F(SchemeTest, UniformEccRoundTrip) {
  UniformEccScheme s(cache_);
  install(0, 0, 1);
  s.on_fill(0, 0);
  EXPECT_EQ(s.check_read(0, 0, memory_).outcome, ReadOutcome::kOk);
  // Corrupt one payload bit: corrected.
  cache_.data(0, 0)[3] = flip_bit(cache_.data(0, 0)[3], 17);
  const auto r = s.check_read(0, 0, memory_);
  EXPECT_EQ(r.outcome, ReadOutcome::kCorrected);
  EXPECT_EQ(r.words_corrected, 1u);
  EXPECT_EQ(s.check_read(0, 0, memory_).outcome, ReadOutcome::kOk);
}

TEST_F(SchemeTest, UniformEccDirtyDoubleIsDue) {
  UniformEccScheme s(cache_);
  install(1, 0, 1);
  s.on_fill(1, 0);
  cache_.mark_dirty(1, 0);
  cache_.data(1, 0)[0] ^= 0b101;  // double-bit error in one word
  EXPECT_EQ(s.check_read(1, 0, memory_).outcome, ReadOutcome::kUncorrectable);
}

TEST_F(SchemeTest, UniformEccCleanDoubleRefetches) {
  UniformEccScheme s(cache_);
  const Addr a = install(1, 1, 2);
  s.on_fill(1, 1);
  cache_.data(1, 1)[0] ^= 0b101;
  EXPECT_EQ(s.check_read(1, 1, memory_).outcome, ReadOutcome::kRefetched);
  EXPECT_EQ(cache_.data(1, 1)[0], memory_.read_word(a));
}

TEST_F(SchemeTest, NonUniformCleanLineParityRefetch) {
  NonUniformScheme s(cache_);
  const Addr a = install(0, 0, 3);
  s.on_fill(0, 0);
  EXPECT_TRUE(s.ecc_words(0, 0).empty());  // clean line carries no ECC
  cache_.data(0, 0)[5] = flip_bit(cache_.data(0, 0)[5], 60);
  const auto r = s.check_read(0, 0, memory_);
  EXPECT_EQ(r.outcome, ReadOutcome::kRefetched);
  EXPECT_EQ(cache_.data(0, 0)[5], memory_.read_word(a + 5 * 8));
}

TEST_F(SchemeTest, NonUniformDirtyLineEccCorrects) {
  NonUniformScheme s(cache_);
  install(0, 1, 4);
  s.on_fill(0, 1);
  cache_.mark_dirty(0, 1);
  cache_.data(0, 1)[2] = 0x1234;
  s.on_write_applied(0, 1, u64{1} << 2);
  EXPECT_FALSE(s.ecc_words(0, 1).empty());
  const u64 golden = cache_.data(0, 1)[2];
  cache_.data(0, 1)[2] = flip_bit(golden, 9);
  const auto r = s.check_read(0, 1, memory_);
  EXPECT_EQ(r.outcome, ReadOutcome::kCorrected);
  EXPECT_EQ(cache_.data(0, 1)[2], golden);
}

TEST_F(SchemeTest, NonUniformTracksPeakDirty) {
  NonUniformScheme s(cache_);
  for (unsigned w = 0; w < 3; ++w) {
    install(2, w, 10 + w);
    s.on_fill(2, w);
    cache_.mark_dirty(2, w);
    s.on_write_applied(2, w, 1);
  }
  EXPECT_EQ(s.peak_dirty_lines(), 3u);
}

TEST_F(SchemeTest, SharedArrayAllowsOneDirtyPerSet) {
  SharedEccArrayScheme s(cache_, 1);
  install(0, 0, 1);
  s.on_fill(0, 0);
  install(0, 1, 2);
  s.on_fill(0, 1);

  // First dirtying: entry free, no forced write-back.
  EXPECT_FALSE(s.before_dirty(0, 0).has_value());
  cache_.mark_dirty(0, 0);
  cache_.data(0, 0)[0] = 7;
  s.on_write_applied(0, 0, 1);
  EXPECT_EQ(s.entry_of(0, 0), 0);

  // Second line wants to dirty: the scheme demands eviction of line 0's ECC.
  const auto fw = s.before_dirty(0, 1);
  ASSERT_TRUE(fw.has_value());
  EXPECT_EQ(fw->set, 0u);
  EXPECT_EQ(fw->way, 0u);
  EXPECT_EQ(s.ecc_entry_evictions(), 1u);

  // Controller writes line 0 back and frees its entry...
  cache_.clear_dirty(0, 0);
  s.on_writeback(0, 0);
  // ...after which the allocation succeeds.
  EXPECT_FALSE(s.before_dirty(0, 1).has_value());
  cache_.mark_dirty(0, 1);
  s.on_write_applied(0, 1, 1);
  EXPECT_EQ(s.entry_of(0, 1), 0);
  EXPECT_EQ(s.entry_of(0, 0), -1);
  EXPECT_EQ(cache_.count_dirty_in_set(0), 1u);
}

TEST_F(SchemeTest, SharedArrayRedirtyingOwnerNeedsNoEviction) {
  SharedEccArrayScheme s(cache_, 1);
  install(1, 0, 1);
  s.on_fill(1, 0);
  EXPECT_FALSE(s.before_dirty(1, 0).has_value());
  cache_.mark_dirty(1, 0);
  s.on_write_applied(1, 0, 1);
  // Writing the same dirty line again must not evict anything.
  EXPECT_FALSE(s.before_dirty(1, 0).has_value());
  EXPECT_EQ(s.ecc_entry_evictions(), 0u);
}

TEST_F(SchemeTest, SharedArrayTwoEntriesAllowTwoDirty) {
  SharedEccArrayScheme s(cache_, 2);
  for (unsigned w = 0; w < 3; ++w) {
    install(2, w, 20 + w);
    s.on_fill(2, w);
  }
  EXPECT_FALSE(s.before_dirty(2, 0).has_value());
  cache_.mark_dirty(2, 0);
  s.on_write_applied(2, 0, 1);
  EXPECT_FALSE(s.before_dirty(2, 1).has_value());
  cache_.mark_dirty(2, 1);
  s.on_write_applied(2, 1, 1);
  // Third dirty line evicts the oldest allocation (way 0).
  const auto fw = s.before_dirty(2, 2);
  ASSERT_TRUE(fw.has_value());
  EXPECT_EQ(fw->way, 0u);
}

TEST_F(SchemeTest, SharedArrayK2EvictsOldestAllocationFirst) {
  SharedEccArrayScheme s(cache_, 2);
  for (unsigned w = 0; w < 4; ++w) {
    install(1, w, 40 + w);
    s.on_fill(1, w);
  }
  const auto dirty = [&](unsigned way) {
    EXPECT_FALSE(s.before_dirty(1, way).has_value());
    cache_.mark_dirty(1, way);
    s.on_write_applied(1, way, 1);
  };
  dirty(0);
  dirty(1);
  // Re-dirtying the oldest owner must NOT refresh its allocation age:
  // entry eviction is ordered by allocation, not by write recency.
  EXPECT_FALSE(s.before_dirty(1, 0).has_value());
  s.on_write_applied(1, 0, 1);
  // Third dirty line: way 0 (oldest allocation) is nominated.
  auto fw = s.before_dirty(1, 2);
  ASSERT_TRUE(fw.has_value());
  EXPECT_EQ(fw->way, 0u);
  EXPECT_EQ(fw->addr, cache_.line_addr(1, 0));
  cache_.clear_dirty(1, 0);
  s.on_writeback(1, 0);
  dirty(2);
  // Fourth dirty line: the oldest remaining allocation is now way 1.
  fw = s.before_dirty(1, 3);
  ASSERT_TRUE(fw.has_value());
  EXPECT_EQ(fw->way, 1u);
  EXPECT_EQ(s.ecc_entry_evictions(), 2u);
}

TEST_F(SchemeTest, SharedArrayK2EntryMapStaysConsistent) {
  SharedEccArrayScheme s(cache_, 2);
  for (unsigned w = 0; w < 4; ++w) {
    install(2, w, 50 + w);
    s.on_fill(2, w);
  }
  for (unsigned way : {1u, 3u}) {
    EXPECT_FALSE(s.before_dirty(2, way).has_value());
    cache_.mark_dirty(2, way);
    s.on_write_applied(2, way, 1);
  }
  // Both dirty ways own distinct entries in [0, k); clean ways own none,
  // and each dirty way's ECC span is live.
  EXPECT_NE(s.entry_of(2, 1), -1);
  EXPECT_NE(s.entry_of(2, 3), -1);
  EXPECT_NE(s.entry_of(2, 1), s.entry_of(2, 3));
  EXPECT_LT(s.entry_of(2, 1), 2);
  EXPECT_LT(s.entry_of(2, 3), 2);
  EXPECT_EQ(s.entry_of(2, 0), -1);
  EXPECT_EQ(s.entry_of(2, 2), -1);
  EXPECT_TRUE(s.ecc_words(2, 0).empty());
  EXPECT_FALSE(s.ecc_words(2, 1).empty());
  // A write-back releases exactly the owner's entry.
  cache_.clear_dirty(2, 1);
  s.on_writeback(2, 1);
  EXPECT_EQ(s.entry_of(2, 1), -1);
  EXPECT_NE(s.entry_of(2, 3), -1);
  EXPECT_EQ(s.ecc_entry_evictions(), 0u);
}

TEST_F(SchemeTest, SharedArrayDirtyLineCorrectsViaSharedEntry) {
  SharedEccArrayScheme s(cache_, 1);
  install(3, 2, 9);
  s.on_fill(3, 2);
  EXPECT_FALSE(s.before_dirty(3, 2).has_value());
  cache_.mark_dirty(3, 2);
  cache_.data(3, 2)[7] = 0xFEED;
  s.on_write_applied(3, 2, u64{1} << 7);
  cache_.data(3, 2)[7] = flip_bit(0xFEED, 3);
  EXPECT_EQ(s.check_read(3, 2, memory_).outcome, ReadOutcome::kCorrected);
  EXPECT_EQ(cache_.data(3, 2)[7], 0xFEEDu);
}

TEST_F(SchemeTest, SharedArrayEvictReleasesEntry) {
  SharedEccArrayScheme s(cache_, 1);
  install(0, 3, 30);
  s.on_fill(0, 3);
  EXPECT_FALSE(s.before_dirty(0, 3).has_value());
  cache_.mark_dirty(0, 3);
  s.on_write_applied(0, 3, 1);
  // Line leaves the cache (controller wrote it back first).
  cache_.clear_dirty(0, 3);
  s.on_evict(0, 3);
  EXPECT_EQ(s.entry_of(0, 3), -1);
  install(0, 3, 31);
  s.on_fill(0, 3);  // would assert internally on a stale entry
}

// ---------------------------------------------------------------------------
// ProtectedL2 controller
// ---------------------------------------------------------------------------

class ProtectedL2Test : public ::testing::Test {
 protected:
  L2Config small_config(SchemeKind scheme, Cycle interval = 0) {
    L2Config cfg;
    cfg.geometry = cache::CacheGeometry{4096, 4, 64};  // 16 sets
    cfg.hit_latency = 10;
    cfg.scheme = scheme;
    cfg.cleaning_interval = interval;
    cfg.maintain_codes = true;
    return cfg;
  }

  std::vector<u64> line_of(u64 v) { return std::vector<u64>(8, v); }

  mem::SplitTransactionBus bus_{{8, 100}};
  mem::MemoryStore memory_;
};

TEST_F(ProtectedL2Test, ReadMissThenHitLatency) {
  ProtectedL2 l2(small_config(SchemeKind::kUniformEcc), bus_, memory_);
  const Cycle miss_done = l2.read(0, 0x1000);
  EXPECT_EQ(miss_done, 10 + 100 + 8u);  // hit latency + DRAM + 8 beats
  const Cycle hit_done = l2.read(200, 0x1000);
  EXPECT_EQ(hit_done, 210u);
}

TEST_F(ProtectedL2Test, WriteMakesDirtyAndSecondWriteSetsWrittenBit) {
  ProtectedL2 l2(small_config(SchemeKind::kNonUniform), bus_, memory_);
  const std::vector<u64> v = line_of(0xAB);
  l2.write(0, 0x2000, 0x1, v);
  const auto pr = l2.cache_model().probe(0x2000);
  ASSERT_TRUE(pr.hit);
  EXPECT_TRUE(l2.cache_model().meta(pr.set, pr.way).dirty);
  EXPECT_FALSE(l2.cache_model().meta(pr.set, pr.way).written);
  l2.write(300, 0x2000, 0x2, v);
  EXPECT_TRUE(l2.cache_model().meta(pr.set, pr.way).written);  // §3.2
}

TEST_F(ProtectedL2Test, DirtyEvictionIsReplacementWriteback) {
  auto cfg = small_config(SchemeKind::kNonUniform);
  ProtectedL2 l2(cfg, bus_, memory_);
  // Dirty one line, then blow the set with 4 more fills to evict it.
  const Addr base = 0x0;
  l2.write(0, base, ~u64{0}, line_of(0x77));
  const u64 set = cfg.geometry.set_index(base);
  for (unsigned k = 1; k <= 4; ++k) {
    const Addr conflict = cfg.geometry.addr_of(100 + k, set);
    l2.read(1000 * k, conflict);
  }
  EXPECT_EQ(l2.wb_count(WbCause::kReplacement), 1u);
  // The write-back reached memory.
  EXPECT_EQ(memory_.read_word(base), 0x77u);
}

TEST_F(ProtectedL2Test, CleaningWritesBackIdleDirtyLines) {
  auto cfg = small_config(SchemeKind::kNonUniform, /*interval=*/1600);
  ProtectedL2 l2(cfg, bus_, memory_);  // 16 sets -> one set per 100 cycles
  l2.write(0, 0x0, ~u64{0}, line_of(0x5A));
  // Tick through one full interval: the line is dirty with written=0, so
  // the FSM cleans it.
  for (Cycle t = 1; t <= 1700; ++t) l2.tick(t);
  EXPECT_EQ(l2.wb_count(WbCause::kCleaning), 1u);
  const auto pr = l2.cache_model().probe(0x0);
  ASSERT_TRUE(pr.hit);
  EXPECT_FALSE(l2.cache_model().meta(pr.set, pr.way).dirty);
  EXPECT_EQ(memory_.read_word(0x0), 0x5Au);
}

TEST_F(ProtectedL2Test, WrittenBitDefersCleaningOnePass) {
  auto cfg = small_config(SchemeKind::kNonUniform, 1600);
  ProtectedL2 l2(cfg, bus_, memory_);
  l2.write(0, 0x0, 0x1, line_of(1));
  l2.write(10, 0x0, 0x2, line_of(2));  // written bit now set
  // Set 0 is inspected at t=100 (resets written) and t=1700 (cleans).
  Cycle t = 11;
  for (; t <= 1650; ++t) l2.tick(t);
  EXPECT_EQ(l2.wb_count(WbCause::kCleaning), 0u);
  for (; t <= 1750; ++t) l2.tick(t);
  EXPECT_EQ(l2.wb_count(WbCause::kCleaning), 1u);
}

TEST_F(ProtectedL2Test, NaiveCleaningIgnoresWrittenBit) {
  auto cfg = small_config(SchemeKind::kNonUniform, 1600);
  cfg.cleaning_policy = CleaningPolicy::kNaive;
  ProtectedL2 l2(cfg, bus_, memory_);
  l2.write(0, 0x0, 0x1, line_of(1));
  l2.write(10, 0x0, 0x2, line_of(2));
  for (Cycle t = 11; t <= 1700; ++t) l2.tick(t);
  EXPECT_EQ(l2.wb_count(WbCause::kCleaning), 1u);
}

TEST_F(ProtectedL2Test, EccEvictionOnSecondDirtyLineInSet) {
  auto cfg = small_config(SchemeKind::kSharedEccArray);
  ProtectedL2 l2(cfg, bus_, memory_);
  const u64 set = 3;
  const Addr a = cfg.geometry.addr_of(1, set);
  const Addr b = cfg.geometry.addr_of(2, set);
  l2.write(0, a, ~u64{0}, line_of(0xA));
  l2.write(100, b, ~u64{0}, line_of(0xB));
  EXPECT_EQ(l2.wb_count(WbCause::kEccEviction), 1u);
  // Line a was forced clean and reached memory; b is the dirty one.
  EXPECT_EQ(memory_.read_word(a), 0xAu);
  EXPECT_EQ(l2.cache_model().count_dirty_in_set(set), 1u);
  const auto pb = l2.cache_model().probe(b);
  EXPECT_TRUE(l2.cache_model().meta(pb.set, pb.way).dirty);
}

TEST_F(ProtectedL2Test, EccEvictionAccountingWithTwoEntries) {
  auto cfg = small_config(SchemeKind::kSharedEccArray);
  cfg.ecc_entries_per_set = 2;
  ProtectedL2 l2(cfg, bus_, memory_);
  const u64 set = 5;
  const Addr a = cfg.geometry.addr_of(1, set);
  const Addr b = cfg.geometry.addr_of(2, set);
  const Addr c = cfg.geometry.addr_of(3, set);
  l2.write(0, a, ~u64{0}, line_of(0xA));
  l2.write(100, b, ~u64{0}, line_of(0xB));
  // Two entries hold two dirty lines without any forced traffic.
  EXPECT_EQ(l2.wb_count(WbCause::kEccEviction), 0u);
  EXPECT_EQ(l2.cache_model().count_dirty_in_set(set), 2u);
  // The third dirty line evicts the oldest allocation (line a).
  l2.write(200, c, ~u64{0}, line_of(0xC));
  EXPECT_EQ(l2.wb_count(WbCause::kEccEviction), 1u);
  EXPECT_EQ(l2.cache_model().count_dirty_in_set(set), 2u);
  EXPECT_EQ(memory_.read_word(a), 0xAu);
  const auto pa = l2.cache_model().probe(a);
  ASSERT_TRUE(pa.hit);
  EXPECT_FALSE(l2.cache_model().meta(pa.set, pa.way).dirty);
  // §3.3 accounting: forced ECC-WBs equal the scheme's entry evictions.
  auto* shared = dynamic_cast<SharedEccArrayScheme*>(&l2.scheme());
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(l2.wb_count(WbCause::kEccEviction), shared->ecc_entry_evictions());
}

TEST_F(ProtectedL2Test, SharedArrayInvariantUnderChurn) {
  auto cfg = small_config(SchemeKind::kSharedEccArray, 3200);
  ProtectedL2 l2(cfg, bus_, memory_);
  Xorshift64Star rng(5);
  Cycle t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += 1 + rng.next_below(4);
    l2.tick(t);
    const u64 set = rng.next_below(16);
    const Addr addr = cfg.geometry.addr_of(rng.next_below(12), set);
    if (rng.chance(0.4)) {
      l2.write(t, addr, u64{1} << rng.next_below(8), line_of(rng.next()));
    } else {
      l2.read(t, addr);
    }
    // Invariant: never more than one dirty line per set.
    for (u64 s = 0; s < 16; ++s)
      ASSERT_LE(l2.cache_model().count_dirty_in_set(s), 1u);
  }
  EXPECT_GT(l2.wb_count(WbCause::kEccEviction), 0u);
}

TEST_F(ProtectedL2Test, DirtyResidencyIntegralMatchesHandComputation) {
  ProtectedL2 l2(small_config(SchemeKind::kNonUniform), bus_, memory_);
  // Dirty 1 line at t=0 (the write lands at t=0), evict it at t=1000 via
  // conflict fills, finalize at t=2000.
  l2.write(0, 0x0, ~u64{0}, line_of(1));
  const u64 set = 0;
  for (unsigned k = 1; k <= 4; ++k)
    l2.read(1000, l2.config().geometry.addr_of(100 + k, set));
  l2.finalize(2000);
  // 1 dirty line over [0,1000), 0 over [1000,2000): average 0.5 lines.
  EXPECT_NEAR(l2.avg_dirty_lines(), 0.5, 0.01);
}

TEST_F(ProtectedL2Test, WbTotalSumsCauses) {
  auto cfg = small_config(SchemeKind::kSharedEccArray, 1600);
  ProtectedL2 l2(cfg, bus_, memory_);
  const u64 set = 0;
  l2.write(0, cfg.geometry.addr_of(1, set), ~u64{0}, line_of(1));
  l2.write(1, cfg.geometry.addr_of(2, set), ~u64{0}, line_of(2));  // ECC-WB
  for (Cycle t = 2; t < 3300; ++t) l2.tick(t);                     // Clean-WB
  EXPECT_EQ(l2.wb_total(), l2.wb_count(WbCause::kReplacement) +
                               l2.wb_count(WbCause::kCleaning) +
                               l2.wb_count(WbCause::kEccEviction));
  EXPECT_GE(l2.wb_total(), 2u);
}

TEST_F(ProtectedL2Test, ResetMetricsKeepsState) {
  ProtectedL2 l2(small_config(SchemeKind::kNonUniform), bus_, memory_);
  l2.write(0, 0x0, ~u64{0}, line_of(9));
  l2.reset_metrics(100);
  EXPECT_EQ(l2.wb_total(), 0u);
  EXPECT_TRUE(l2.cache_model().probe(0x0).hit);  // state survives
  EXPECT_EQ(l2.cache_model().dirty_count(), 1u);
}

TEST_F(ProtectedL2Test, ResetMetricsRebasesPeakDirtyAndInspections) {
  auto cfg = small_config(SchemeKind::kNonUniform, /*interval=*/1600);
  ProtectedL2 l2(cfg, bus_, memory_);
  // Push the dirty population to 3, then evict one via conflict fills so
  // the *current* level (2) sits below the recorded peak (3). High sets:
  // the FSM (one set per 100 cycles) must not reach them before t=400.
  for (u64 s = 12; s < 15; ++s)
    l2.write(s, cfg.geometry.addr_of(1, s), ~u64{0}, line_of(s));
  for (unsigned k = 1; k <= 4; ++k)
    l2.read(100 + k, cfg.geometry.addr_of(100 + k, 12));
  ASSERT_EQ(l2.cache_model().dirty_count(), 2u);
  ASSERT_EQ(l2.peak_dirty_lines(), 3u);
  for (Cycle t = 105; t <= 400; ++t) l2.tick(t);
  ASSERT_GT(l2.cleaning_inspections(), 0u);

  // After a warm-up reset the metrics must restart from live state: the
  // peak rebases to the current dirty count, inspections to zero — and the
  // dirty-residency integral agrees with the rebased level.
  l2.reset_metrics(400);
  EXPECT_EQ(l2.peak_dirty_lines(), l2.cache_model().dirty_count());
  EXPECT_EQ(l2.peak_dirty_lines(), 2u);
  EXPECT_EQ(l2.cleaning_inspections(), 0u);
  l2.finalize(600);
  EXPECT_NEAR(l2.avg_dirty_lines(), 2.0, 1e-9);
}

TEST_F(ProtectedL2Test, SchemeNames) {
  EXPECT_STREQ(to_string(WbCause::kReplacement), "WB");
  EXPECT_STREQ(to_string(WbCause::kCleaning), "Clean-WB");
  EXPECT_STREQ(to_string(WbCause::kEccEviction), "ECC-WB");
  ProtectedL2 l2(small_config(SchemeKind::kSharedEccArray), bus_, memory_);
  EXPECT_EQ(l2.scheme().name(), "shared-ecc-array(k=1)");
}

}  // namespace
}  // namespace aeep::protect
