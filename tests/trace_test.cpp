// Round-trip and damage tests for the L2 access-trace format (src/trace/):
// every malformed input class — truncation, CRC damage, wrong magic, wrong
// version — must surface as the documented TraceErrorKind, never a crash or
// a silently wrong decode (this suite also runs under ASan/UBSan in CI).
// Ends with a small execution-vs-replay cross-validation smoke.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/validate.hpp"
#include "trace/writer.hpp"

namespace aeep::trace {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + "aeep_trace_test_" + name + ".aeept";
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spew(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TraceErrorKind kind_of(const std::string& path) {
  try {
    TraceReader reader(path);
    TraceEvent e;
    while (reader.next(e)) {
    }
  } catch (const TraceError& err) {
    return err.kind();
  }
  ADD_FAILURE() << path << ": expected a TraceError";
  return TraceErrorKind::kIo;
}

/// A deterministic synthetic stream with all four event kinds and
/// jumpy addresses (exercises the zigzag delta coder both directions).
std::vector<TraceEvent> synthetic_events(u64 n) {
  std::vector<TraceEvent> events;
  events.reserve(n);
  Cycle tick = 5;
  for (u64 i = 0; i < n; ++i) {
    TraceEvent e;
    switch (i % 4) {
      case 0: e.kind = EventKind::kFetch; e.addr = 0x400000 + i * 64; break;
      case 1: e.kind = EventKind::kLoad; e.addr = 0x10000000 - i * 4096; break;
      case 2:
        e.kind = EventKind::kStore;
        e.addr = 0x7fff0000 + (i % 7) * 8;
        e.value = 0xdeadbeef00ull + i;
        break;
      case 3: e.kind = EventKind::kStatsReset; break;
    }
    e.tick = tick;
    tick += (i % 3);  // repeated ticks are legal; regressions are not
    events.push_back(e);
  }
  return events;
}

void write_trace(const std::string& path, const std::vector<TraceEvent>& events,
                 u32 chunk_events = kDefaultChunkEvents) {
  TraceWriter writer(path, 64, chunk_events);
  for (const auto& e : events) writer.append(e);
  TraceSummary s;
  s.end_tick = events.empty() ? 0 : events.back().tick + 1;
  s.committed = 123;
  s.loads = 45;
  s.stores = 6;
  writer.finish(s);
}

std::vector<TraceEvent> read_all(const std::string& path) {
  TraceReader reader(path);
  std::vector<TraceEvent> events;
  TraceEvent e;
  while (reader.next(e)) events.push_back(e);
  return events;
}

TEST(TraceRoundTrip, EmptyTrace) {
  const std::string path = temp_path("empty");
  write_trace(path, {});
  TraceReader reader(path);
  TraceEvent e;
  EXPECT_FALSE(reader.next(e));
  EXPECT_EQ(reader.events_read(), 0u);
  EXPECT_EQ(reader.summary().events, 0u);
  EXPECT_EQ(reader.summary().committed, 123u);
  EXPECT_EQ(reader.line_bytes(), 64u);
  // next() after the footer keeps returning false (idempotent end).
  EXPECT_FALSE(reader.next(e));
  std::remove(path.c_str());
}

TEST(TraceRoundTrip, SingleAccess) {
  const std::string path = temp_path("single");
  TraceEvent in;
  in.kind = EventKind::kStore;
  in.tick = 1'000'000;
  in.addr = 0xdead0008;
  in.value = 42;
  write_trace(path, {in});
  const auto events = read_all(path);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], in);
  std::remove(path.c_str());
}

TEST(TraceRoundTrip, MultiChunk) {
  const std::string path = temp_path("multichunk");
  const auto in = synthetic_events(1000);
  write_trace(path, in, /*chunk_events=*/64);  // forces ~16 chunks
  TraceReader reader(path);
  std::vector<TraceEvent> out;
  TraceEvent e;
  while (reader.next(e)) out.push_back(e);
  EXPECT_EQ(out, in);
  EXPECT_GT(reader.chunks_read(), 10u);
  EXPECT_EQ(reader.summary().events, in.size());
  std::remove(path.c_str());
}

TEST(TraceRoundTrip, WriterRejectsTimeTravel) {
  const std::string path = temp_path("timetravel");
  TraceWriter writer(path, 64);
  TraceEvent e;
  e.tick = 100;
  writer.append(e);
  e.tick = 99;
  try {
    writer.append(e);
    FAIL() << "expected kCorrupt for a non-monotonic tick";
  } catch (const TraceError& err) {
    EXPECT_EQ(err.kind(), TraceErrorKind::kCorrupt);
  }
  std::remove(path.c_str());
}

TEST(TraceDamage, MissingFileIsIoError) {
  try {
    TraceReader reader(temp_path("does_not_exist"));
    FAIL() << "expected kIo";
  } catch (const TraceError& err) {
    EXPECT_EQ(err.kind(), TraceErrorKind::kIo);
  }
}

TEST(TraceDamage, EmptyFileIsTruncated) {
  const std::string path = temp_path("zerobytes");
  spew(path, {});
  try {
    TraceReader reader(path);
    FAIL() << "expected kTruncated";
  } catch (const TraceError& err) {
    EXPECT_EQ(err.kind(), TraceErrorKind::kTruncated);
  }
  std::remove(path.c_str());
}

TEST(TraceDamage, MissingFooterIsTruncated) {
  const std::string path = temp_path("nofooter");
  write_trace(path, synthetic_events(100), /*chunk_events=*/32);
  auto bytes = slurp(path);
  // Chop the footer (tag + sizes + payload sit at the end of the file).
  ASSERT_GT(bytes.size(), 8u);
  bytes.resize(bytes.size() - 8);
  spew(path, bytes);
  EXPECT_EQ(kind_of(path), TraceErrorKind::kTruncated);
  std::remove(path.c_str());
}

TEST(TraceDamage, TruncationMidChunkIsTruncated) {
  const std::string path = temp_path("midchunk");
  write_trace(path, synthetic_events(1000), /*chunk_events=*/64);
  auto bytes = slurp(path);
  bytes.resize(bytes.size() / 2);  // lands inside a data chunk
  spew(path, bytes);
  EXPECT_EQ(kind_of(path), TraceErrorKind::kTruncated);
  std::remove(path.c_str());
}

TEST(TraceDamage, FlippedPayloadByteIsCorrupt) {
  const std::string path = temp_path("crc");
  write_trace(path, synthetic_events(200), /*chunk_events=*/64);
  auto bytes = slurp(path);
  // Header is 16 bytes; first data chunk: tag u8 + 3 u32s, payload at +29.
  const std::size_t target = 16 + 1 + 12 + 3;
  ASSERT_LT(target, bytes.size());
  bytes[target] = static_cast<char>(bytes[target] ^ 0x40);
  spew(path, bytes);
  EXPECT_EQ(kind_of(path), TraceErrorKind::kCorrupt);
  std::remove(path.c_str());
}

TEST(TraceDamage, VersionMismatchIsBadVersion) {
  const std::string path = temp_path("version");
  write_trace(path, synthetic_events(10));
  auto bytes = slurp(path);
  bytes[4] = static_cast<char>(kTraceVersion + 1);  // version u32 LE at +4
  spew(path, bytes);
  try {
    TraceReader reader(path);
    FAIL() << "expected kBadVersion";
  } catch (const TraceError& err) {
    EXPECT_EQ(err.kind(), TraceErrorKind::kBadVersion);
  }
  std::remove(path.c_str());
}

TEST(TraceDamage, WrongMagicIsBadMagic) {
  const std::string path = temp_path("magic");
  write_trace(path, synthetic_events(10));
  auto bytes = slurp(path);
  bytes[0] = 'X';
  spew(path, bytes);
  try {
    TraceReader reader(path);
    FAIL() << "expected kBadMagic";
  } catch (const TraceError& err) {
    EXPECT_EQ(err.kind(), TraceErrorKind::kBadMagic);
  }
  std::remove(path.c_str());
}

TEST(TraceDamage, GarbageAfterFooterIsCorrupt) {
  const std::string path = temp_path("trailing");
  write_trace(path, synthetic_events(10));
  auto bytes = slurp(path);
  bytes.push_back('!');
  spew(path, bytes);
  EXPECT_EQ(kind_of(path), TraceErrorKind::kCorrupt);
  std::remove(path.c_str());
}

// The whole point of the subsystem: a replayed trace reproduces the
// execution-driven run's protection metrics. Small run, full pipeline
// (capture -> replay -> metric diff) through the CI gate's own harness.
TEST(TraceValidate, ReplayMatchesExecution) {
  sim::ExperimentOptions eo;
  eo.instructions = 20'000;
  eo.warmup_instructions = 5'000;
  eo.scheme = protect::SchemeKind::kSharedEccArray;
  eo.cleaning_interval = u64{64} << 10;
  const sim::SystemConfig cfg = sim::make_system_config("gzip", eo);
  const std::string path = temp_path("validate");
  const ValidationReport rep = cross_validate(cfg, path, 0.01);
  EXPECT_TRUE(rep.pass) << rep.to_text();
  EXPECT_GT(rep.trace_events, 0u);
  for (const auto& m : rep.metrics)
    EXPECT_EQ(m.exec, m.replay) << m.name << " (self-replay must be exact)";
  std::remove(path.c_str());
}

TEST(TraceValidate, RelativeErrorEdgeCases) {
  EXPECT_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_EQ(relative_error(1.0, 1.0), 0.0);
  EXPECT_NEAR(relative_error(100.0, 99.0), 0.01, 1e-12);
  EXPECT_EQ(relative_error(0.0, 5.0), 1.0);
}

// A valid header+footer with zero events is a legal capture (a run whose
// warm-up consumed everything), not a damaged file: replay must produce
// empty metrics, never throw.
TEST(TraceReplay, HeaderOnlyTraceReplaysToEmptyMetrics) {
  const std::string path = temp_path("replay_empty");
  write_trace(path, {});
  ReplayConfig rc;
  rc.hierarchy = sim::make_system_config("gzip", {}).hierarchy;
  rc.trace_path = path;
  ReplayDriver driver(std::move(rc));
  const sim::RunResult r = driver.run();
  EXPECT_EQ(driver.events_replayed(), 0u);
  EXPECT_EQ(r.l2.accesses(), 0u);
  EXPECT_EQ(r.wb_total(), 0u);
  EXPECT_EQ(r.avg_dirty_fraction, 0.0);
  // The capture summary still travels: committed/loads/stores come from
  // the footer even when no events do.
  EXPECT_EQ(r.core.committed, 123u);
  std::remove(path.c_str());
}

// A trace whose event count is an exact multiple of the chunk size ends
// with a completely full final chunk — the footer sits exactly on a CRC
// boundary. Every event must replay; nothing may be mistaken for
// truncation.
TEST(TraceReplay, FinalChunkExactlyAtCrcBoundary) {
  const std::string path = temp_path("replay_boundary");
  const auto events = synthetic_events(16);
  write_trace(path, events, /*chunk_events=*/8);  // 2 chunks, both full
  {
    TraceReader reader(path);
    TraceEvent e;
    u64 n = 0;
    while (reader.next(e)) ++n;
    EXPECT_EQ(n, 16u);
    EXPECT_EQ(reader.chunks_read(), 2u);
  }
  ReplayConfig rc;
  rc.hierarchy = sim::make_system_config("gzip", {}).hierarchy;
  rc.trace_path = path;
  ReplayDriver driver(std::move(rc));
  const sim::RunResult r = driver.run();
  EXPECT_EQ(driver.events_replayed(), 16u);
  EXPECT_EQ(r.core.committed, 123u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aeep::trace
