# Empty compiler generated dependencies file for aeep_cache.
# This may be replaced when dependencies are built.
