file(REMOVE_RECURSE
  "libaeep_cache.a"
)
