file(REMOVE_RECURSE
  "CMakeFiles/aeep_cache.dir/cache.cpp.o"
  "CMakeFiles/aeep_cache.dir/cache.cpp.o.d"
  "CMakeFiles/aeep_cache.dir/write_buffer.cpp.o"
  "CMakeFiles/aeep_cache.dir/write_buffer.cpp.o.d"
  "libaeep_cache.a"
  "libaeep_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeep_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
