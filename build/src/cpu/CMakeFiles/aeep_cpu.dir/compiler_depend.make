# Empty compiler generated dependencies file for aeep_cpu.
# This may be replaced when dependencies are built.
