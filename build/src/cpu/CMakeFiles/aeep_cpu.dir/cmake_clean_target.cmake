file(REMOVE_RECURSE
  "libaeep_cpu.a"
)
