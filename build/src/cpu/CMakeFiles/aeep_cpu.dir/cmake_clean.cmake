file(REMOVE_RECURSE
  "CMakeFiles/aeep_cpu.dir/branch_predictor.cpp.o"
  "CMakeFiles/aeep_cpu.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/aeep_cpu.dir/core.cpp.o"
  "CMakeFiles/aeep_cpu.dir/core.cpp.o.d"
  "CMakeFiles/aeep_cpu.dir/func_units.cpp.o"
  "CMakeFiles/aeep_cpu.dir/func_units.cpp.o.d"
  "CMakeFiles/aeep_cpu.dir/tlb.cpp.o"
  "CMakeFiles/aeep_cpu.dir/tlb.cpp.o.d"
  "libaeep_cpu.a"
  "libaeep_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeep_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
