# Empty compiler generated dependencies file for aeep_protect.
# This may be replaced when dependencies are built.
