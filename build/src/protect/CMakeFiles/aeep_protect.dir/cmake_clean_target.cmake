file(REMOVE_RECURSE
  "libaeep_protect.a"
)
