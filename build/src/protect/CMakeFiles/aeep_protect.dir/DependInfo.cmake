
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protect/area_model.cpp" "src/protect/CMakeFiles/aeep_protect.dir/area_model.cpp.o" "gcc" "src/protect/CMakeFiles/aeep_protect.dir/area_model.cpp.o.d"
  "/root/repo/src/protect/cleaning_logic.cpp" "src/protect/CMakeFiles/aeep_protect.dir/cleaning_logic.cpp.o" "gcc" "src/protect/CMakeFiles/aeep_protect.dir/cleaning_logic.cpp.o.d"
  "/root/repo/src/protect/energy_model.cpp" "src/protect/CMakeFiles/aeep_protect.dir/energy_model.cpp.o" "gcc" "src/protect/CMakeFiles/aeep_protect.dir/energy_model.cpp.o.d"
  "/root/repo/src/protect/non_uniform.cpp" "src/protect/CMakeFiles/aeep_protect.dir/non_uniform.cpp.o" "gcc" "src/protect/CMakeFiles/aeep_protect.dir/non_uniform.cpp.o.d"
  "/root/repo/src/protect/protected_l2.cpp" "src/protect/CMakeFiles/aeep_protect.dir/protected_l2.cpp.o" "gcc" "src/protect/CMakeFiles/aeep_protect.dir/protected_l2.cpp.o.d"
  "/root/repo/src/protect/scrubber.cpp" "src/protect/CMakeFiles/aeep_protect.dir/scrubber.cpp.o" "gcc" "src/protect/CMakeFiles/aeep_protect.dir/scrubber.cpp.o.d"
  "/root/repo/src/protect/shared_ecc_array.cpp" "src/protect/CMakeFiles/aeep_protect.dir/shared_ecc_array.cpp.o" "gcc" "src/protect/CMakeFiles/aeep_protect.dir/shared_ecc_array.cpp.o.d"
  "/root/repo/src/protect/uniform_ecc.cpp" "src/protect/CMakeFiles/aeep_protect.dir/uniform_ecc.cpp.o" "gcc" "src/protect/CMakeFiles/aeep_protect.dir/uniform_ecc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/aeep_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/aeep_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aeep_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aeep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
