file(REMOVE_RECURSE
  "CMakeFiles/aeep_protect.dir/area_model.cpp.o"
  "CMakeFiles/aeep_protect.dir/area_model.cpp.o.d"
  "CMakeFiles/aeep_protect.dir/cleaning_logic.cpp.o"
  "CMakeFiles/aeep_protect.dir/cleaning_logic.cpp.o.d"
  "CMakeFiles/aeep_protect.dir/energy_model.cpp.o"
  "CMakeFiles/aeep_protect.dir/energy_model.cpp.o.d"
  "CMakeFiles/aeep_protect.dir/non_uniform.cpp.o"
  "CMakeFiles/aeep_protect.dir/non_uniform.cpp.o.d"
  "CMakeFiles/aeep_protect.dir/protected_l2.cpp.o"
  "CMakeFiles/aeep_protect.dir/protected_l2.cpp.o.d"
  "CMakeFiles/aeep_protect.dir/scrubber.cpp.o"
  "CMakeFiles/aeep_protect.dir/scrubber.cpp.o.d"
  "CMakeFiles/aeep_protect.dir/shared_ecc_array.cpp.o"
  "CMakeFiles/aeep_protect.dir/shared_ecc_array.cpp.o.d"
  "CMakeFiles/aeep_protect.dir/uniform_ecc.cpp.o"
  "CMakeFiles/aeep_protect.dir/uniform_ecc.cpp.o.d"
  "libaeep_protect.a"
  "libaeep_protect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeep_protect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
