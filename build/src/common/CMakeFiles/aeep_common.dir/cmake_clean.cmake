file(REMOVE_RECURSE
  "CMakeFiles/aeep_common.dir/cli.cpp.o"
  "CMakeFiles/aeep_common.dir/cli.cpp.o.d"
  "CMakeFiles/aeep_common.dir/log.cpp.o"
  "CMakeFiles/aeep_common.dir/log.cpp.o.d"
  "CMakeFiles/aeep_common.dir/rng.cpp.o"
  "CMakeFiles/aeep_common.dir/rng.cpp.o.d"
  "CMakeFiles/aeep_common.dir/stats.cpp.o"
  "CMakeFiles/aeep_common.dir/stats.cpp.o.d"
  "CMakeFiles/aeep_common.dir/table.cpp.o"
  "CMakeFiles/aeep_common.dir/table.cpp.o.d"
  "libaeep_common.a"
  "libaeep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeep_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
