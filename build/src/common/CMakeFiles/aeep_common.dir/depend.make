# Empty dependencies file for aeep_common.
# This may be replaced when dependencies are built.
