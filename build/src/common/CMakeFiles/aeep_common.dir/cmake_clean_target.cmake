file(REMOVE_RECURSE
  "libaeep_common.a"
)
