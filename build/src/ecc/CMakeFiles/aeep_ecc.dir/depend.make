# Empty dependencies file for aeep_ecc.
# This may be replaced when dependencies are built.
