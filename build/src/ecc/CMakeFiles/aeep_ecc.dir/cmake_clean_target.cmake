file(REMOVE_RECURSE
  "libaeep_ecc.a"
)
