file(REMOVE_RECURSE
  "CMakeFiles/aeep_ecc.dir/line_codec.cpp.o"
  "CMakeFiles/aeep_ecc.dir/line_codec.cpp.o.d"
  "CMakeFiles/aeep_ecc.dir/parity.cpp.o"
  "CMakeFiles/aeep_ecc.dir/parity.cpp.o.d"
  "CMakeFiles/aeep_ecc.dir/secded.cpp.o"
  "CMakeFiles/aeep_ecc.dir/secded.cpp.o.d"
  "CMakeFiles/aeep_ecc.dir/wide_secded.cpp.o"
  "CMakeFiles/aeep_ecc.dir/wide_secded.cpp.o.d"
  "libaeep_ecc.a"
  "libaeep_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeep_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
