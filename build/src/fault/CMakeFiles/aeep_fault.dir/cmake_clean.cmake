file(REMOVE_RECURSE
  "CMakeFiles/aeep_fault.dir/injector.cpp.o"
  "CMakeFiles/aeep_fault.dir/injector.cpp.o.d"
  "CMakeFiles/aeep_fault.dir/reliability.cpp.o"
  "CMakeFiles/aeep_fault.dir/reliability.cpp.o.d"
  "libaeep_fault.a"
  "libaeep_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeep_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
