# Empty compiler generated dependencies file for aeep_fault.
# This may be replaced when dependencies are built.
