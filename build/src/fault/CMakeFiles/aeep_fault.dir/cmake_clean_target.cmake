file(REMOVE_RECURSE
  "libaeep_fault.a"
)
