file(REMOVE_RECURSE
  "CMakeFiles/aeep_workload.dir/generator.cpp.o"
  "CMakeFiles/aeep_workload.dir/generator.cpp.o.d"
  "CMakeFiles/aeep_workload.dir/profile.cpp.o"
  "CMakeFiles/aeep_workload.dir/profile.cpp.o.d"
  "CMakeFiles/aeep_workload.dir/trace.cpp.o"
  "CMakeFiles/aeep_workload.dir/trace.cpp.o.d"
  "libaeep_workload.a"
  "libaeep_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeep_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
