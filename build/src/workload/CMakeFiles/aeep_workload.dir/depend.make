# Empty dependencies file for aeep_workload.
# This may be replaced when dependencies are built.
