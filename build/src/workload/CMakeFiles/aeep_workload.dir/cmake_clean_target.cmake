file(REMOVE_RECURSE
  "libaeep_workload.a"
)
