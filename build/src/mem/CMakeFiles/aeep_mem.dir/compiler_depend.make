# Empty compiler generated dependencies file for aeep_mem.
# This may be replaced when dependencies are built.
