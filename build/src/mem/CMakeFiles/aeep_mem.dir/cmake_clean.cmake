file(REMOVE_RECURSE
  "CMakeFiles/aeep_mem.dir/bus.cpp.o"
  "CMakeFiles/aeep_mem.dir/bus.cpp.o.d"
  "CMakeFiles/aeep_mem.dir/memory_store.cpp.o"
  "CMakeFiles/aeep_mem.dir/memory_store.cpp.o.d"
  "libaeep_mem.a"
  "libaeep_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeep_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
