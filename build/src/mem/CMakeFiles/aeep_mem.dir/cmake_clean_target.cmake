file(REMOVE_RECURSE
  "libaeep_mem.a"
)
