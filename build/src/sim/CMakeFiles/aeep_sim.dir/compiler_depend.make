# Empty compiler generated dependencies file for aeep_sim.
# This may be replaced when dependencies are built.
