file(REMOVE_RECURSE
  "CMakeFiles/aeep_sim.dir/experiment.cpp.o"
  "CMakeFiles/aeep_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/aeep_sim.dir/hierarchy.cpp.o"
  "CMakeFiles/aeep_sim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/aeep_sim.dir/system.cpp.o"
  "CMakeFiles/aeep_sim.dir/system.cpp.o.d"
  "libaeep_sim.a"
  "libaeep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
