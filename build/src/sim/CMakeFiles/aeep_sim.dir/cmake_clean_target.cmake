file(REMOVE_RECURSE
  "libaeep_sim.a"
)
