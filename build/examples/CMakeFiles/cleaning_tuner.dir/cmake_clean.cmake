file(REMOVE_RECURSE
  "CMakeFiles/cleaning_tuner.dir/cleaning_tuner.cpp.o"
  "CMakeFiles/cleaning_tuner.dir/cleaning_tuner.cpp.o.d"
  "cleaning_tuner"
  "cleaning_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaning_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
