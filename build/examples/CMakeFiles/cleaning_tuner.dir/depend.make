# Empty dependencies file for cleaning_tuner.
# This may be replaced when dependencies are built.
