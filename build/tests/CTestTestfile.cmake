# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/ecc_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/protect_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/wide_secded_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/cache_property_test[1]_include.cmake")
include("/root/repo/build/tests/scrubber_trace_test[1]_include.cmake")
include("/root/repo/build/tests/combo_invariant_test[1]_include.cmake")
include("/root/repo/build/tests/sim_integration_test[1]_include.cmake")
