file(REMOVE_RECURSE
  "CMakeFiles/protect_test.dir/protect_test.cpp.o"
  "CMakeFiles/protect_test.dir/protect_test.cpp.o.d"
  "protect_test"
  "protect_test.pdb"
  "protect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
