# Empty compiler generated dependencies file for protect_test.
# This may be replaced when dependencies are built.
