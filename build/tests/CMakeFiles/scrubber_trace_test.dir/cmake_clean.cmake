file(REMOVE_RECURSE
  "CMakeFiles/scrubber_trace_test.dir/scrubber_trace_test.cpp.o"
  "CMakeFiles/scrubber_trace_test.dir/scrubber_trace_test.cpp.o.d"
  "scrubber_trace_test"
  "scrubber_trace_test.pdb"
  "scrubber_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubber_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
