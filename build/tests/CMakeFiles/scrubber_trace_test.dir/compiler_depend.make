# Empty compiler generated dependencies file for scrubber_trace_test.
# This may be replaced when dependencies are built.
