file(REMOVE_RECURSE
  "CMakeFiles/wide_secded_test.dir/wide_secded_test.cpp.o"
  "CMakeFiles/wide_secded_test.dir/wide_secded_test.cpp.o.d"
  "wide_secded_test"
  "wide_secded_test.pdb"
  "wide_secded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_secded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
