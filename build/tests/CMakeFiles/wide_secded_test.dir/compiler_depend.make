# Empty compiler generated dependencies file for wide_secded_test.
# This may be replaced when dependencies are built.
