file(REMOVE_RECURSE
  "CMakeFiles/combo_invariant_test.dir/combo_invariant_test.cpp.o"
  "CMakeFiles/combo_invariant_test.dir/combo_invariant_test.cpp.o.d"
  "combo_invariant_test"
  "combo_invariant_test.pdb"
  "combo_invariant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combo_invariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
