file(REMOVE_RECURSE
  "CMakeFiles/fig5_6_wb_traffic.dir/fig5_6_wb_traffic.cpp.o"
  "CMakeFiles/fig5_6_wb_traffic.dir/fig5_6_wb_traffic.cpp.o.d"
  "fig5_6_wb_traffic"
  "fig5_6_wb_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_6_wb_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
