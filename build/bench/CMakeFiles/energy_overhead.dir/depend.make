# Empty dependencies file for energy_overhead.
# This may be replaced when dependencies are built.
