file(REMOVE_RECURSE
  "CMakeFiles/energy_overhead.dir/energy_overhead.cpp.o"
  "CMakeFiles/energy_overhead.dir/energy_overhead.cpp.o.d"
  "energy_overhead"
  "energy_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
