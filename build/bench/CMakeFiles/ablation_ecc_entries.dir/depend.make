# Empty dependencies file for ablation_ecc_entries.
# This may be replaced when dependencies are built.
