file(REMOVE_RECURSE
  "CMakeFiles/ablation_ecc_entries.dir/ablation_ecc_entries.cpp.o"
  "CMakeFiles/ablation_ecc_entries.dir/ablation_ecc_entries.cpp.o.d"
  "ablation_ecc_entries"
  "ablation_ecc_entries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ecc_entries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
