file(REMOVE_RECURSE
  "CMakeFiles/scrubbing_study.dir/scrubbing_study.cpp.o"
  "CMakeFiles/scrubbing_study.dir/scrubbing_study.cpp.o.d"
  "scrubbing_study"
  "scrubbing_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubbing_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
