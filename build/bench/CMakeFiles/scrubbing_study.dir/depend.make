# Empty dependencies file for scrubbing_study.
# This may be replaced when dependencies are built.
