# Empty dependencies file for fig1_dirty_baseline.
# This may be replaced when dependencies are built.
