file(REMOVE_RECURSE
  "CMakeFiles/reliability_estimate.dir/reliability_estimate.cpp.o"
  "CMakeFiles/reliability_estimate.dir/reliability_estimate.cpp.o.d"
  "reliability_estimate"
  "reliability_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
