# Empty dependencies file for reliability_estimate.
# This may be replaced when dependencies are built.
