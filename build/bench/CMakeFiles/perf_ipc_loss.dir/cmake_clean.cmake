file(REMOVE_RECURSE
  "CMakeFiles/perf_ipc_loss.dir/perf_ipc_loss.cpp.o"
  "CMakeFiles/perf_ipc_loss.dir/perf_ipc_loss.cpp.o.d"
  "perf_ipc_loss"
  "perf_ipc_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_ipc_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
