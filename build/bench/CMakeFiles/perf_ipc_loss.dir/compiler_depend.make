# Empty compiler generated dependencies file for perf_ipc_loss.
# This may be replaced when dependencies are built.
