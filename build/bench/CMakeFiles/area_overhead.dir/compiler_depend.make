# Empty compiler generated dependencies file for area_overhead.
# This may be replaced when dependencies are built.
