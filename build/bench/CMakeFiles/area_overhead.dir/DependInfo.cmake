
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/area_overhead.cpp" "bench/CMakeFiles/area_overhead.dir/area_overhead.cpp.o" "gcc" "bench/CMakeFiles/area_overhead.dir/area_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/aeep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/aeep_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/aeep_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/aeep_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/protect/CMakeFiles/aeep_protect.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/aeep_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/aeep_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aeep_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aeep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
