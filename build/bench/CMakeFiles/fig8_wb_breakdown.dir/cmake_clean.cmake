file(REMOVE_RECURSE
  "CMakeFiles/fig8_wb_breakdown.dir/fig8_wb_breakdown.cpp.o"
  "CMakeFiles/fig8_wb_breakdown.dir/fig8_wb_breakdown.cpp.o.d"
  "fig8_wb_breakdown"
  "fig8_wb_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_wb_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
