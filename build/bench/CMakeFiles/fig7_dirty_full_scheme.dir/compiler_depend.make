# Empty compiler generated dependencies file for fig7_dirty_full_scheme.
# This may be replaced when dependencies are built.
