file(REMOVE_RECURSE
  "CMakeFiles/fig7_dirty_full_scheme.dir/fig7_dirty_full_scheme.cpp.o"
  "CMakeFiles/fig7_dirty_full_scheme.dir/fig7_dirty_full_scheme.cpp.o.d"
  "fig7_dirty_full_scheme"
  "fig7_dirty_full_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dirty_full_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
