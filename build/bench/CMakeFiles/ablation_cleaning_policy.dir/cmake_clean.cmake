file(REMOVE_RECURSE
  "CMakeFiles/ablation_cleaning_policy.dir/ablation_cleaning_policy.cpp.o"
  "CMakeFiles/ablation_cleaning_policy.dir/ablation_cleaning_policy.cpp.o.d"
  "ablation_cleaning_policy"
  "ablation_cleaning_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cleaning_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
