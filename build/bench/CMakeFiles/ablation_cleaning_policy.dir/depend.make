# Empty dependencies file for ablation_cleaning_policy.
# This may be replaced when dependencies are built.
