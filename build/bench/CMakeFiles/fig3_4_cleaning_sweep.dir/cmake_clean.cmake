file(REMOVE_RECURSE
  "CMakeFiles/fig3_4_cleaning_sweep.dir/fig3_4_cleaning_sweep.cpp.o"
  "CMakeFiles/fig3_4_cleaning_sweep.dir/fig3_4_cleaning_sweep.cpp.o.d"
  "fig3_4_cleaning_sweep"
  "fig3_4_cleaning_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_4_cleaning_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
