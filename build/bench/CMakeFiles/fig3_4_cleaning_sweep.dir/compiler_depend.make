# Empty compiler generated dependencies file for fig3_4_cleaning_sweep.
# This may be replaced when dependencies are built.
