# Empty dependencies file for ablation_written_bit.
# This may be replaced when dependencies are built.
