file(REMOVE_RECURSE
  "CMakeFiles/ablation_written_bit.dir/ablation_written_bit.cpp.o"
  "CMakeFiles/ablation_written_bit.dir/ablation_written_bit.cpp.o.d"
  "ablation_written_bit"
  "ablation_written_bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_written_bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
