// Online error-recovery campaign: Poisson soft-error strikes plus a
// persistent stuck-at cell rain on the live L2 arrays *while* the workload
// runs. The recovery controller corrects, re-fetches, applies the DUE
// policy, and retires repeat-offender ways; this binary prints the whole
// story — strike counts, every recovery action, the MCA-style error log
// head, and the capacity the cache gave up to keep running.
//
//   ./recovery_campaign --benchmark=gzip --rate-scale=2e9 --mbu=0.25
//                       --threshold=4 --due-policy=drop
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);

  sim::ExperimentOptions eo;
  const std::string bench = args.get("benchmark", "gzip");
  eo.scheme = protect::SchemeKind::kSharedEccArray;
  const std::string scheme_name = args.get("scheme", "shared");
  if (scheme_name == "uniform") eo.scheme = protect::SchemeKind::kUniformEcc;
  if (scheme_name == "nonuniform") eo.scheme = protect::SchemeKind::kNonUniform;
  eo.instructions = args.get_u64("instructions", 400'000);
  eo.warmup_instructions = args.get_u64("warmup", 0);
  eo.seed = args.get_u64("seed", 42);
  eo.cleaning_interval = args.get_u64("cleaning", u64{1} << 18);

  eo.strikes_enabled = true;
  eo.strike_rate_scale = args.get_double("rate-scale", 2e9);
  eo.strike_double_bit_fraction = args.get_double("mbu", 0.25);
  eo.retirement_threshold =
      static_cast<unsigned>(args.get_u64("threshold", 4));
  const std::string due = args.get("due-policy", "drop");
  eo.due_policy = due == "panic"    ? protect::DuePolicy::kPanic
                  : due == "poison" ? protect::DuePolicy::kPoison
                                    : protect::DuePolicy::kDropRefetch;

  // A permanently stuck data cell in each of four sets: every re-fetch of a
  // resident line re-corrupts, retries exhaust, and the fault map walks the
  // site over the retirement threshold.
  for (u64 set : {0u, 1u, 2u, 3u})
    eo.stuck_faults.push_back(
        {fault::FaultTarget::kData, set, /*way=*/0, /*bit=*/5,
         /*stuck_high=*/true, /*start=*/0, /*period=*/0});

  std::printf("online recovery campaign: %s on %s, DUE policy %s\n", bench.c_str(),
              scheme_name.c_str(), to_string(eo.due_policy));
  sim::System system(sim::make_system_config(bench, eo));
  const sim::RunResult r = system.run();

  std::printf("\nrun completed: %llu cycles, IPC %.3f%s\n",
              static_cast<unsigned long long>(r.core.cycles), r.ipc(),
              r.panicked ? "  [MACHINE-CHECK PANIC LATCHED]" : "");

  TextTable strikes({"strike process", "count"});
  strikes.add_row({"strikes", std::to_string(r.strikes.strikes)});
  strikes.add_row({"bits flipped", std::to_string(r.strikes.bits_flipped)});
  strikes.add_row({"data hits", std::to_string(r.strikes.data_hits)});
  strikes.add_row({"parity hits", std::to_string(r.strikes.parity_hits)});
  strikes.add_row({"ecc hits", std::to_string(r.strikes.ecc_hits)});
  strikes.add_row({"absorbed (dead cells)", std::to_string(r.strikes.absorbed)});
  strikes.add_row({"stuck-at re-asserts", std::to_string(r.strikes.stuck_reasserts)});
  std::printf("\n%s\n", strikes.render().c_str());

  const auto& rec = r.recovery;
  TextTable recov({"recovery controller", "count"});
  recov.add_row({"lines validated", std::to_string(rec.checks)});
  recov.add_row({"errors handled", std::to_string(rec.errors)});
  recov.add_row({"corrected + scrubbed", std::to_string(rec.corrected)});
  recov.add_row({"refetched (parity)", std::to_string(rec.refetched)});
  recov.add_row({"refetch retries", std::to_string(rec.retries)});
  recov.add_row({"retry budget exhausted", std::to_string(rec.retry_exhausted)});
  recov.add_row({"DUE events", std::to_string(rec.due_events)});
  recov.add_row({"lines dropped", std::to_string(rec.lines_dropped)});
  recov.add_row({"dirty data lost", std::to_string(rec.dirty_lines_lost)});
  recov.add_row({"lines poisoned", std::to_string(rec.lines_poisoned)});
  recov.add_row({"poison reads", std::to_string(rec.poison_reads)});
  recov.add_row({"recovery stall cycles", std::to_string(rec.stall_cycles)});
  std::printf("%s\n", recov.render().c_str());

  std::printf("graceful degradation: %llu way(s) retired (%.3f%% of capacity)\n",
              static_cast<unsigned long long>(r.retired_ways),
              100.0 * r.retired_capacity_fraction);

  const auto log = system.hierarchy().l2().recovery().error_log();
  const u64 dropped = system.hierarchy().l2().recovery().error_log_dropped();
  std::printf("\nMCA error log (%zu newest entries kept, %llu dropped):\n",
              log.size(), static_cast<unsigned long long>(dropped));
  TextTable tl({"cycle", "set", "way", "dirty", "outcome", "action", "retries"});
  const std::size_t show = log.size() < 12 ? log.size() : 12;
  for (std::size_t i = 0; i < show; ++i) {
    const auto& e = log[i];
    tl.add_row({std::to_string(e.cycle), std::to_string(e.set),
                std::to_string(e.way), e.was_dirty ? "y" : "n",
                to_string(e.outcome), to_string(e.action),
                std::to_string(e.retries)});
  }
  std::printf("%s\n", tl.render().c_str());
  return 0;
}
