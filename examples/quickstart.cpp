// Quickstart: run one SPEC2000-like benchmark on the Table-1 machine under
// the paper's full protection scheme (parity + shared ECC array + 1M-cycle
// dirty-line cleaning) and print the headline metrics next to the
// conventional uniform-ECC baseline.
//
//   ./quickstart [--benchmark=gzip] [--instructions=2M] [--interval=1M]
#include <cstdio>

#include "common/cli.hpp"
#include "protect/area_model.hpp"
#include "sim/experiment.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const std::string bench = args.get("benchmark", "gzip");
  sim::ExperimentOptions base;
  base.instructions = args.get_u64("instructions", 2'000'000);
  base.warmup_instructions = args.get_u64("warmup", 2'000'000);
  base.seed = args.get_u64("seed", 42);

  std::printf("%s\n", sim::table1_text().c_str());
  std::printf("benchmark: %s, %llu committed micro-ops\n\n", bench.c_str(),
              static_cast<unsigned long long>(base.instructions));

  // Conventional baseline: uniform ECC, no cleaning.
  sim::ExperimentOptions conv = base;
  conv.scheme = protect::SchemeKind::kUniformEcc;
  const sim::RunResult org = sim::run_benchmark(bench, conv);

  // The paper's scheme: shared ECC array (1 entry/set) + 1M-cycle cleaning.
  sim::ExperimentOptions ours = base;
  ours.scheme = protect::SchemeKind::kSharedEccArray;
  ours.cleaning_interval = args.get_u64("interval", u64{1} << 20);
  const sim::RunResult prop = sim::run_benchmark(bench, ours);

  auto show = [](const char* label, const sim::RunResult& r) {
    std::printf("%-14s IPC %.3f | dirty lines/cycle %5.1f%% | WB/(ld+st) %.3f%%"
                " [WB %llu, Clean-WB %llu, ECC-WB %llu]\n",
                label, r.ipc(), 100.0 * r.avg_dirty_fraction,
                100.0 * r.wb_per_ls(),
                static_cast<unsigned long long>(r.wb_replacement),
                static_cast<unsigned long long>(r.wb_cleaning),
                static_cast<unsigned long long>(r.wb_ecc));
  };
  show("conventional", org);
  show("proposed", prop);

  const auto conv_area = protect::conventional_area(cache::kL2Geometry);
  const auto prop_area = protect::proposed_area(cache::kL2Geometry, 1);
  std::printf("\nprotection area: %.0fKB -> %.0fKB (%.0f%% reduction)\n",
              conv_area.total_kib(), prop_area.total_kib(),
              100.0 * prop_area.reduction_vs(conv_area));
  std::printf("IPC loss: %.2f%%\n",
              100.0 * (org.ipc() - prop.ipc()) / org.ipc());
  return 0;
}
