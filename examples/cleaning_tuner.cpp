// Cleaning-interval tuner: the §5.1 methodology as a tool. For one
// benchmark, sweeps the cleaning interval and prints dirty-line residency,
// write-back traffic broken down by cause, and IPC — the trade-off a
// designer uses to pick the interval (the paper picks 1M for ~4K dirty
// lines with near-org traffic).
//
//   ./cleaning_tuner --benchmark=swim [--instructions=2M] [--scheme=nonuniform|shared]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const std::string bench = args.get("benchmark", "swim");
  const std::string scheme_name = args.get("scheme", "nonuniform");
  sim::ExperimentOptions base;
  base.instructions = args.get_u64("instructions", 2'000'000);
  base.warmup_instructions = args.get_u64("warmup", 2'000'000);
  base.seed = args.get_u64("seed", 42);
  base.scheme = scheme_name == "shared"
                    ? protect::SchemeKind::kSharedEccArray
                    : protect::SchemeKind::kNonUniform;

  std::printf("cleaning-interval tuner: %s under %s\n\n", bench.c_str(),
              scheme_name.c_str());

  TextTable table({"interval", "dirty lines/cycle", "avg dirty lines",
                   "Clean-WB", "WB", "ECC-WB", "WB/(ld+st)", "IPC"});
  const std::vector<u64> intervals = {0,          u64{64} << 10, u64{256} << 10,
                                      u64{1} << 20, u64{2} << 20, u64{4} << 20};
  for (const u64 interval : intervals) {
    sim::ExperimentOptions eo = base;
    eo.cleaning_interval = interval;
    const sim::RunResult r = sim::run_benchmark(bench, eo);
    std::string label = "org";
    if (interval) {
      label = interval >= (u64{1} << 20)
                  ? std::to_string(interval >> 20) + "M"
                  : std::to_string(interval >> 10) + "K";
    }
    table.add_row({label, TextTable::pct(r.avg_dirty_fraction, 1),
                   std::to_string(r.avg_dirty_lines),
                   std::to_string(r.wb_cleaning),
                   std::to_string(r.wb_replacement), std::to_string(r.wb_ecc),
                   TextTable::pct(r.wb_per_ls(), 2),
                   TextTable::fmt(r.ipc(), 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npick the largest interval that still meets your dirty-line"
              " (ECC storage) target:\nsmaller intervals clean more but pay"
              " premature write-backs.\n");
  return 0;
}
