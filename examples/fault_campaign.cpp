// Fault-injection campaign on a live cache image: warms a system up, then
// bombards the L2 arrays with random single/double bit flips, printing what
// the protection scheme did with each class of strike. Demonstrates the
// paper's guarantee: the proposed scheme matches uniform ECC's protection
// of dirty data while clean lines ride on parity + refetch.
//
//   ./fault_campaign --scheme=shared --benchmark=vpr --injections=5000
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "fault/injector.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const std::string bench = args.get("benchmark", "vpr");
  const std::string scheme_name = args.get("scheme", "shared");
  const u64 injections = args.get_u64("injections", 5000);

  sim::SystemConfig cfg;
  cfg.benchmark = bench;
  cfg.seed = args.get_u64("seed", 42);
  cfg.warmup_instructions = 0;
  cfg.instructions = args.get_u64("instructions", 500'000);
  cfg.hierarchy.l2.maintain_codes = true;
  if (scheme_name == "uniform")
    cfg.hierarchy.l2.scheme = protect::SchemeKind::kUniformEcc;
  else if (scheme_name == "nonuniform")
    cfg.hierarchy.l2.scheme = protect::SchemeKind::kNonUniform;
  else
    cfg.hierarchy.l2.scheme = protect::SchemeKind::kSharedEccArray;

  std::printf("warming %s on %s...\n", scheme_name.c_str(), bench.c_str());
  sim::System system(cfg);
  system.run();
  system.hierarchy().flush_write_buffer(system.core().now());
  std::printf("cache image: %llu dirty of %llu lines\n\n",
              static_cast<unsigned long long>(
                  system.hierarchy().l2().cache_model().dirty_count()),
              static_cast<unsigned long long>(
                  cfg.hierarchy.l2.geometry.total_lines()));

  for (const unsigned flips : {1u, 2u}) {
    fault::FaultCampaign campaign(system.hierarchy().l2(),
                                  cfg.seed + 100 + flips);
    for (u64 i = 0; i < injections; ++i) campaign.inject_anywhere(flips);
    const auto& t = campaign.tally();
    std::printf("--- %u-bit strikes, %llu injections ---\n", flips,
                static_cast<unsigned long long>(t.injections));
    TextTable table({"class", "count", "rate"});
    for (unsigned c = 0; c < fault::kNumFaultClasses; ++c) {
      const auto cls = static_cast<fault::FaultClass>(c);
      table.add_row({to_string(cls), std::to_string(t.of(cls)),
                     TextTable::pct(t.rate(cls), 3)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("expected: 1-bit strikes fully recovered; 2-bit strikes in\n"
              "dirty data detected (DUE), in clean data recovered by refetch\n"
              "(word parity misses same-word double flips on clean lines —\n"
              "the residual risk every parity-protected cache carries).\n");
  return 0;
}
