// Protection-design explorer: compares the three schemes side by side on a
// chosen benchmark and geometry — storage overhead, dirty-line residency,
// traffic, and IPC — the decision table an SoC architect would want before
// adopting the paper's scheme for their L2.
//
//   ./protection_explorer --benchmark=gcc [--l2kb=1024] [--ways=4] [--interval=1M]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "protect/area_model.hpp"
#include "sim/experiment.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const std::string bench = args.get("benchmark", "gcc");
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  const u64 l2kb = args.get_u64("l2kb", 1024);
  const unsigned ways = static_cast<unsigned>(args.get_u64("ways", 4));

  const cache::CacheGeometry geom{l2kb * KiB, ways, 64};
  geom.validate();

  sim::ExperimentOptions base;
  base.instructions = args.get_u64("instructions", 1'000'000);
  base.warmup_instructions = args.get_u64("warmup", 1'000'000);
  base.seed = args.get_u64("seed", 42);

  struct Variant {
    const char* label;
    protect::SchemeKind scheme;
    Cycle interval;
    protect::AreaReport area;
  };
  const auto conv_area = protect::conventional_area(geom);
  std::vector<Variant> variants = {
      {"uniform ECC (baseline)", protect::SchemeKind::kUniformEcc, 0,
       conv_area},
      {"non-uniform, no cleaning", protect::SchemeKind::kNonUniform, 0,
       protect::non_uniform_area(geom, 1.0)},  // provisioned after the run
      {"non-uniform + cleaning", protect::SchemeKind::kNonUniform, interval,
       protect::non_uniform_area(geom, 1.0)},
      {"shared ECC array + cleaning", protect::SchemeKind::kSharedEccArray,
       interval, protect::proposed_area(geom, 1)},
  };

  std::printf("protection explorer: %s on %lluKB %u-way L2, interval %lluK\n\n",
              bench.c_str(), static_cast<unsigned long long>(l2kb), ways,
              static_cast<unsigned long long>(interval >> 10));

  TextTable table({"scheme", "area", "vs base", "dirty%", "WB/(ld+st)",
                   "IPC"});
  for (auto& v : variants) {
    sim::ExperimentOptions eo = base;
    eo.scheme = v.scheme;
    eo.cleaning_interval = v.interval;
    auto cfg = sim::make_system_config(bench, eo);
    cfg.hierarchy.l2.geometry = geom;
    sim::System system(cfg);
    const sim::RunResult r = system.run();
    // Non-uniform storage must be provisioned for the observed peak.
    protect::AreaReport area = v.area;
    if (v.scheme == protect::SchemeKind::kNonUniform) {
      area = protect::non_uniform_area(
          geom, static_cast<double>(r.peak_dirty_lines) /
                    static_cast<double>(geom.total_lines()));
    }
    table.add_row({v.label, TextTable::fmt(area.total_kib(), 1) + "KB",
                   TextTable::pct(area.reduction_vs(conv_area), 1),
                   TextTable::pct(r.avg_dirty_fraction, 1),
                   TextTable::pct(r.wb_per_ls(), 2),
                   TextTable::fmt(r.ipc(), 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n'vs base' is the storage saved relative to uniform ECC;\n"
              "non-uniform rows are provisioned for the peak dirty count the"
              " run observed.\n");
  return 0;
}
